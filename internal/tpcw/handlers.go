package tpcw

import (
	"fmt"
	"strings"

	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
)

// This file implements the 14 TPC-W web interactions. Every handler
// follows the paper's modified Django convention: perform the database
// queries on the worker's connection, then return the *unrendered*
// template name plus the data context — the "return (tmpl.html, data)"
// one-line change of Section 3.1.

// home is the TPC-W home interaction: greeting plus promotional items.
func (a *App) home(r *server.Request) (*server.Result, error) {
	data := map[string]any{"subjects": Subjects}
	if cid := intParam(r.Query, "c_id", 0); cid > 0 {
		rs, err := r.DB.Query("SELECT c_fname, c_lname FROM customer WHERE c_id = ?", cid)
		if err != nil {
			return nil, errPage(PageHome, err)
		}
		if rs.Len() > 0 {
			data["c_id"] = cid
			data["c_fname"] = rs.Str(0, "c_fname")
			data["c_lname"] = rs.Str(0, "c_lname")
		}
	}
	promos, err := a.promotions(r.DB)
	if err != nil {
		return nil, errPage(PageHome, err)
	}
	data["promotions"] = promos
	return &server.Result{Template: "home.html", Data: data}, nil
}

// promotions picks five items by rotating point lookups — the TPC-W
// promotional display on home, cart, and search pages.
func (a *App) promotions(db server.DBConn) ([]map[string]any, error) {
	out := make([]map[string]any, 0, 5)
	for k := 0; k < 5; k++ {
		id := a.defaultItem()
		rs, err := db.Query("SELECT i_id, i_title, i_thumbnail FROM item WHERE i_id = ?", id)
		if err != nil {
			return nil, err
		}
		if rs.Len() > 0 {
			out = append(out, rs.First())
		}
	}
	return out, nil
}

// shoppingCart creates/loads a cart, optionally adds an item, and shows
// the cart contents.
func (a *App) shoppingCart(r *server.Request) (*server.Result, error) {
	scID := intParam(r.Query, "sc_id", 0)
	if scID == 0 {
		res, err := r.DB.Exec("INSERT INTO shopping_cart (sc_id, sc_time) VALUES (NULL, ?)", a.clk.Now())
		if err != nil {
			return nil, errPage(PageShoppingCart, err)
		}
		scID = int(res.LastInsertID)
	}
	if iID := intParam(r.Query, "i_id", 0); iID > 0 {
		qty := intParam(r.Query, "qty", 1)
		existing, err := r.DB.Query(
			"SELECT scl_id, scl_qty FROM shopping_cart_line WHERE scl_sc_id = ? AND scl_i_id = ?", scID, iID)
		if err != nil {
			return nil, errPage(PageShoppingCart, err)
		}
		if existing.Len() > 0 {
			if _, err := r.DB.Exec("UPDATE shopping_cart_line SET scl_qty = ? WHERE scl_id = ?",
				existing.Int(0, "scl_qty")+int64(qty), existing.Int(0, "scl_id")); err != nil {
				return nil, errPage(PageShoppingCart, err)
			}
		} else {
			if _, err := r.DB.Exec(
				"INSERT INTO shopping_cart_line (scl_id, scl_sc_id, scl_i_id, scl_qty) VALUES (NULL, ?, ?, ?)",
				scID, iID, qty); err != nil {
				return nil, errPage(PageShoppingCart, err)
			}
		}
	}
	lines, subTotal, err := a.cartLines(r.DB, scID)
	if err != nil {
		return nil, errPage(PageShoppingCart, err)
	}
	promos, err := a.promotions(r.DB)
	if err != nil {
		return nil, errPage(PageShoppingCart, err)
	}
	return &server.Result{Template: "shopping_cart.html", Data: map[string]any{
		"sc_id":        scID,
		"lines":        lines,
		"sc_sub_total": subTotal,
		"promotions":   promos,
	}}, nil
}

// cartLines loads a cart's lines joined with item data and computes the
// subtotal.
func (a *App) cartLines(db server.DBConn, scID int) ([]map[string]any, float64, error) {
	rs, err := db.Query(
		`SELECT scl_i_id, scl_qty, i_id, i_title, i_cost FROM shopping_cart_line
		 JOIN item ON scl_i_id = i_id WHERE scl_sc_id = ?`, scID)
	if err != nil {
		return nil, 0, err
	}
	lines := rs.Maps()
	subTotal := 0.0
	for _, line := range lines {
		qty := float64(line["scl_qty"].(int64))
		cost := line["i_cost"].(float64)
		line["subtotal"] = qty * cost
		subTotal += qty * cost
	}
	return lines, subTotal, nil
}

// customerRegistration shows the checkout identification form.
func (a *App) customerRegistration(r *server.Request) (*server.Result, error) {
	return &server.Result{Template: "customer_registration.html", Data: map[string]any{
		"sc_id": intParam(r.Query, "sc_id", 0),
	}}, nil
}

// lookupCustomer finds a customer by uname (indexed) or falls back to a
// rotating default, mirroring the emulated browser's registered-user mix.
func (a *App) lookupCustomer(db server.DBConn, q map[string]string) (map[string]any, error) {
	if uname := q["uname"]; uname != "" {
		rs, err := db.Query("SELECT * FROM customer WHERE c_uname = ?", uname)
		if err != nil {
			return nil, err
		}
		if rs.Len() > 0 {
			return rs.First(), nil
		}
	}
	cid := intParam(q, "c_id", a.defaultCustomer())
	rs, err := db.Query("SELECT * FROM customer WHERE c_id = ?", cid)
	if err != nil {
		return nil, err
	}
	return rs.First(), nil
}

// buyRequest shows the order confirmation page: customer, billing
// address, cart contents, and totals.
func (a *App) buyRequest(r *server.Request) (*server.Result, error) {
	cust, err := a.lookupCustomer(r.DB, r.Query)
	if err != nil || cust == nil {
		return nil, errPage(PageBuyRequest, fmt.Errorf("customer lookup: %v", err))
	}
	data := map[string]any{
		"c_id": cust["c_id"], "c_uname": cust["c_uname"],
		"c_fname": cust["c_fname"], "c_lname": cust["c_lname"],
		"c_discount": cust["c_discount"],
	}
	addr, err := r.DB.Query(
		`SELECT addr_street1, addr_city, addr_state, addr_zip, co_name FROM address
		 JOIN country ON addr_co_id = co_id WHERE addr_id = ?`, cust["c_addr_id"])
	if err != nil {
		return nil, errPage(PageBuyRequest, err)
	}
	if addr.Len() > 0 {
		for k, v := range addr.First() {
			data[k] = v
		}
	}
	scID := intParam(r.Query, "sc_id", 0)
	lines, subTotal, err := a.cartLines(r.DB, scID)
	if err != nil {
		return nil, errPage(PageBuyRequest, err)
	}
	tax := subTotal * 0.0825
	data["sc_id"] = scID
	data["lines"] = lines
	data["sc_sub_total"] = subTotal
	data["tax"] = tax
	data["total"] = subTotal + tax
	return &server.Result{Template: "buy_request.html", Data: data}, nil
}

// buyConfirm turns the cart into an order: inserts the order, its lines,
// and the credit-card transaction, then empties the cart.
func (a *App) buyConfirm(r *server.Request) (*server.Result, error) {
	scID := intParam(r.Query, "sc_id", 0)
	cID := intParam(r.Query, "c_id", a.defaultCustomer())
	lines, subTotal, err := a.cartLines(r.DB, scID)
	if err != nil {
		return nil, errPage(PageBuyConfirm, err)
	}
	total := subTotal * 1.0825
	now := a.clk.Now()
	shipType := shipTypes[int(a.spin())%len(shipTypes)]

	res, err := r.DB.Exec(
		`INSERT INTO orders (o_id, o_c_id, o_date, o_sub_total, o_total, o_ship_type,
		 o_ship_date, o_bill_addr_id, o_ship_addr_id, o_status)
		 VALUES (NULL, ?, ?, ?, ?, ?, ?, ?, ?, ?)`,
		cID, now, subTotal, total, shipType, now.AddDate(0, 0, 3), cID, cID, "PENDING")
	if err != nil {
		return nil, errPage(PageBuyConfirm, err)
	}
	oID := res.LastInsertID
	for _, line := range lines {
		if _, err := r.DB.Exec(
			"INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount, ol_comments) VALUES (NULL, ?, ?, ?, 0.0, '')",
			oID, line["scl_i_id"], line["scl_qty"]); err != nil {
			return nil, errPage(PageBuyConfirm, err)
		}
	}
	if _, err := r.DB.Exec(
		"INSERT INTO cc_xacts (cx_o_id, cx_type, cx_num, cx_name, cx_expire, cx_xact_amt, cx_xact_date, cx_co_id) VALUES (?, 'VISA', '4111111111111111', 'CARD HOLDER', ?, ?, ?, 1)",
		oID, now.AddDate(2, 0, 0), total, now); err != nil {
		return nil, errPage(PageBuyConfirm, err)
	}
	if _, err := r.DB.Exec("DELETE FROM shopping_cart_line WHERE scl_sc_id = ?", scID); err != nil {
		return nil, errPage(PageBuyConfirm, err)
	}
	return &server.Result{Template: "buy_confirm.html", Data: map[string]any{
		"o_id": oID, "total": total, "ship_type": shipType,
	}}, nil
}

// orderInquiry shows the order-status form (no queries).
func (a *App) orderInquiry(*server.Request) (*server.Result, error) {
	return &server.Result{Template: "order_inquiry.html", Data: map[string]any{}}, nil
}

// orderDisplay shows the customer's most recent order.
func (a *App) orderDisplay(r *server.Request) (*server.Result, error) {
	cust, err := a.lookupCustomer(r.DB, r.Query)
	if err != nil || cust == nil {
		return nil, errPage(PageOrderDisplay, fmt.Errorf("customer lookup: %v", err))
	}
	order, err := r.DB.Query(
		"SELECT * FROM orders WHERE o_c_id = ? ORDER BY o_date DESC, o_id DESC LIMIT 1", cust["c_id"])
	if err != nil {
		return nil, errPage(PageOrderDisplay, err)
	}
	if order.Len() == 0 {
		return &server.Result{Template: "order_display.html", Data: map[string]any{}}, nil
	}
	data := order.First()
	lines, err := r.DB.Query(
		`SELECT ol_i_id, ol_qty, i_title, i_cost FROM order_line
		 JOIN item ON ol_i_id = i_id WHERE ol_o_id = ?`, data["o_id"])
	if err != nil {
		return nil, errPage(PageOrderDisplay, err)
	}
	data["lines"] = lines.Maps()
	return &server.Result{Template: "order_display.html", Data: data}, nil
}

// searchRequest shows the search form plus promotions.
func (a *App) searchRequest(r *server.Request) (*server.Result, error) {
	promos, err := a.promotions(r.DB)
	if err != nil {
		return nil, errPage(PageSearchRequest, err)
	}
	return &server.Result{Template: "search_request.html", Data: map[string]any{
		"promotions": promos,
	}}, nil
}

// executeSearch runs the LIKE-based search — one of the paper's three
// inherently slow pages (full scan of the item table).
func (a *App) executeSearch(r *server.Request) (*server.Result, error) {
	field := r.Query["field"]
	terms := r.Query["terms"]
	if terms == "" {
		terms = titleWords[int(a.spin())%len(titleWords)]
	}
	pattern := "%" + terms + "%"
	var (
		rs  *sqldb.ResultSet
		err error
	)
	switch field {
	case "author":
		rs, err = r.DB.Query(
			`SELECT i_id, i_title, i_thumbnail, i_cost, a_fname, a_lname FROM item
			 JOIN author ON i_a_id = a_id WHERE a_lname LIKE ? ORDER BY i_title LIMIT 50`, pattern)
	case "subject":
		rs, err = r.DB.Query(
			`SELECT i_id, i_title, i_thumbnail, i_cost, a_fname, a_lname FROM item
			 JOIN author ON i_a_id = a_id WHERE i_subject = ? ORDER BY i_title LIMIT 50`,
			strings.ToUpper(terms))
	default:
		field = "title"
		rs, err = r.DB.Query(
			`SELECT i_id, i_title, i_thumbnail, i_cost, a_fname, a_lname FROM item
			 JOIN author ON i_a_id = a_id WHERE i_title LIKE ? ORDER BY i_title LIMIT 50`, pattern)
	}
	if err != nil {
		return nil, errPage(PageExecuteSearch, err)
	}
	return &server.Result{Template: "execute_search.html", Data: map[string]any{
		"field": field, "terms": terms, "results": rs.Maps(),
	}}, nil
}

// newProducts lists the newest releases in a subject — the paper's
// slowest page: an unindexed subject filter over the whole item table
// with a publication-date sort.
func (a *App) newProducts(r *server.Request) (*server.Result, error) {
	subject := strings.ToUpper(r.Query["subject"])
	if subject == "" {
		subject = Subjects[int(a.spin())%len(Subjects)]
	}
	rs, err := r.DB.Query(
		`SELECT i_id, i_title, i_thumbnail, i_cost, i_pub_date, a_fname, a_lname FROM item
		 JOIN author ON i_a_id = a_id WHERE i_subject = ? ORDER BY i_pub_date DESC, i_id ASC LIMIT 50`,
		subject)
	if err != nil {
		return nil, errPage(PageNewProducts, err)
	}
	return &server.Result{Template: "new_products.html", Data: map[string]any{
		"subject": subject, "results": rs.Maps(),
	}}, nil
}

// bestSellers aggregates recent order lines — the TPC-W top-50 query and
// the paper's canonical "large and very complex" slow page.
func (a *App) bestSellers(r *server.Request) (*server.Result, error) {
	subject := strings.ToUpper(r.Query["subject"])
	if subject == "" {
		subject = Subjects[int(a.spin())%len(Subjects)]
	}
	// Recent window: the TPC-W specification uses the latest 3333 orders.
	recent := a.orders - 3333
	if recent < 0 {
		recent = 0
	}
	rs, err := r.DB.Query(
		`SELECT i_id, i_title, i_cost, a_fname, a_lname, SUM(ol_qty) AS qty
		 FROM order_line
		 JOIN item ON ol_i_id = i_id
		 JOIN author ON i_a_id = a_id
		 WHERE ol_o_id > ? AND i_subject = ?
		 GROUP BY i_id ORDER BY qty DESC LIMIT 50`, recent, subject)
	if err != nil {
		return nil, errPage(PageBestSellers, err)
	}
	return &server.Result{Template: "best_sellers.html", Data: map[string]any{
		"subject": subject, "results": rs.Maps(),
	}}, nil
}

// productDetail shows one book — an indexed point query, the paper's
// canonical fast page.
func (a *App) productDetail(r *server.Request) (*server.Result, error) {
	iID := intParam(r.Query, "i_id", a.defaultItem())
	rs, err := r.DB.Query(
		"SELECT * FROM item JOIN author ON i_a_id = a_id WHERE i_id = ?", iID)
	if err != nil {
		return nil, errPage(PageProductDetail, err)
	}
	if rs.Len() == 0 {
		return &server.Result{Status: 404, Body: "<html>no such item</html>"}, nil
	}
	return &server.Result{Template: "product_detail.html", Data: rs.First()}, nil
}

// adminRequest shows the item-edit form.
func (a *App) adminRequest(r *server.Request) (*server.Result, error) {
	iID := intParam(r.Query, "i_id", a.defaultItem())
	rs, err := r.DB.Query("SELECT i_id, i_title, i_cost, i_image FROM item WHERE i_id = ?", iID)
	if err != nil {
		return nil, errPage(PageAdminRequest, err)
	}
	if rs.Len() == 0 {
		return &server.Result{Status: 404, Body: "<html>no such item</html>"}, nil
	}
	return &server.Result{Template: "admin_request.html", Data: rs.First()}, nil
}

// adminResponse applies the item update. The statement itself is cheap —
// the paper notes the page is "quite fast" without load — but it needs
// the item table's *write* lock, and nearly every other page holds read
// locks on item, so under load this page queues behind in-flight scans
// (the paper's explanation for its slowdown on the modified server).
func (a *App) adminResponse(r *server.Request) (*server.Result, error) {
	iID := intParam(r.Query, "i_id", a.defaultItem())
	cost := floatParam(r.Query, "cost", 10+float64(a.spin()%90))
	image := r.Query["image"]
	if image == "" {
		image = fmt.Sprintf("/img/image_%d.gif", iID%imageBuckets)
	}
	// Recompute the related-items ring deterministically.
	rel := make([]any, 5)
	for k := 0; k < 5; k++ {
		rel[k] = (iID+k)%a.items + 1
	}
	if _, err := r.DB.Exec(
		`UPDATE item SET i_cost = ?, i_image = ?, i_related1 = ?, i_related2 = ?,
		 i_related3 = ?, i_related4 = ?, i_related5 = ? WHERE i_id = ?`,
		cost, image, rel[0], rel[1], rel[2], rel[3], rel[4], iID); err != nil {
		return nil, errPage(PageAdminResponse, err)
	}
	rs, err := r.DB.Query("SELECT i_id, i_title, i_cost FROM item WHERE i_id = ?", iID)
	if err != nil {
		return nil, errPage(PageAdminResponse, err)
	}
	data := rs.First()
	if data == nil {
		data = map[string]any{"i_id": iID}
	}
	data["related"] = rel
	return &server.Result{Template: "admin_response.html", Data: data}, nil
}
