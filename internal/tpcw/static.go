package tpcw

import (
	"fmt"
	"math/rand"
)

// Static asset sizes, loosely following the TPC-W image specification:
// item thumbnails are small, item images larger, plus the shared banner
// and footer graphics on every page.
const (
	thumbBytes  = 1536
	imageBytes  = 8192
	bannerBytes = 4096
	footerBytes = 1024

	// imageBuckets bounds the number of distinct generated images; item
	// rows reference /img/thumb_<id mod imageBuckets>.gif.
	imageBuckets = 100
)

// StaticAssets generates the deterministic static file set served by the
// bookstore: banner, footer, and the thumbnail/image buckets referenced
// by item rows.
func StaticAssets() map[string][]byte {
	assets := make(map[string][]byte, imageBuckets*2+2)
	assets["/img/banner.gif"] = fakeGIF(0xBAAA, bannerBytes)
	assets["/img/footer.gif"] = fakeGIF(0xF007, footerBytes)
	for i := 0; i < imageBuckets; i++ {
		assets[fmt.Sprintf("/img/thumb_%d.gif", i)] = fakeGIF(int64(i), thumbBytes)
		assets[fmt.Sprintf("/img/image_%d.gif", i)] = fakeGIF(int64(1000+i), imageBytes)
	}
	return assets
}

// fakeGIF produces a deterministic pseudo-image: a GIF89a signature
// followed by seeded pseudo-random bytes. Clients only measure transfer
// size, so content beyond the magic number is immaterial.
func fakeGIF(seed int64, size int) []byte {
	buf := make([]byte, size)
	copy(buf, "GIF89a")
	rng := rand.New(rand.NewSource(seed))
	for i := 6; i < size; i++ {
		buf[i] = byte(rng.Intn(256))
	}
	return buf
}
