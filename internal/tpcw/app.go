package tpcw

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"stagedweb/internal/clock"
	"stagedweb/internal/server"
	"stagedweb/internal/template"
)

// Page names (request paths) for the 14 TPC-W web interactions, in the
// order the paper's tables list them.
const (
	PageAdminRequest  = "/admin_request"
	PageAdminResponse = "/admin_response"
	PageBestSellers   = "/best_sellers"
	PageBuyConfirm    = "/buy_confirm"
	PageBuyRequest    = "/buy_request"
	PageCustomerReg   = "/customer_registration"
	PageExecuteSearch = "/execute_search"
	PageHome          = "/home"
	PageNewProducts   = "/new_products"
	PageOrderDisplay  = "/order_display"
	PageOrderInquiry  = "/order_inquiry"
	PageProductDetail = "/product_detail"
	PageSearchRequest = "/search_request"
	PageShoppingCart  = "/shopping_cart"
)

// Pages lists all 14 interactions in the paper's table order.
var Pages = []string{
	PageAdminRequest,
	PageAdminResponse,
	PageBestSellers,
	PageBuyConfirm,
	PageBuyRequest,
	PageCustomerReg,
	PageExecuteSearch,
	PageHome,
	PageNewProducts,
	PageOrderDisplay,
	PageOrderInquiry,
	PageProductDetail,
	PageSearchRequest,
	PageShoppingCart,
}

// PageTitle returns the paper's display name for a page key
// ("/buy_confirm" -> "TPC-W buy confirm").
func PageTitle(page string) string {
	name := page
	if len(name) > 0 && name[0] == '/' {
		name = name[1:]
	}
	out := make([]byte, 0, len(name)+6)
	out = append(out, "TPC-W "...)
	for i := 0; i < len(name); i++ {
		if name[i] == '_' {
			out = append(out, ' ')
		} else {
			out = append(out, name[i])
		}
	}
	return string(out)
}

// SlowPages are the interactions the paper identifies as inherently slow:
// three large scan/aggregation queries plus the admin update that queues
// on the item table's write lock.
var SlowPages = map[string]bool{
	PageBestSellers:   true,
	PageExecuteSearch: true,
	PageNewProducts:   true,
	PageAdminResponse: true,
}

// App is the TPC-W bookstore application. It implements server.App and is
// servable by both the baseline and the staged server.
type App struct {
	set     *template.Set
	statics map[string][]byte
	routes  map[string]server.HandlerFunc

	items     int
	customers int
	orders    int
	clk       clock.Clock

	// rotor deterministically varies default parameters (promotion item
	// ids, fallback customers) across requests without a shared RNG.
	rotor atomic.Int64
}

var _ server.App = (*App)(nil)

// NewApp builds the bookstore over an already-populated database sized by
// counts. clk may be nil (real clock).
func NewApp(counts Counts, clk clock.Clock) *App {
	if clk == nil {
		clk = clock.Real{}
	}
	a := &App{
		set:       template.NewSet(),
		statics:   StaticAssets(),
		items:     counts.Items,
		customers: counts.Customers,
		orders:    counts.Orders,
		clk:       clk,
	}
	a.set.AddAll(Templates())
	a.routes = map[string]server.HandlerFunc{
		PageHome:          a.home,
		PageShoppingCart:  a.shoppingCart,
		PageCustomerReg:   a.customerRegistration,
		PageBuyRequest:    a.buyRequest,
		PageBuyConfirm:    a.buyConfirm,
		PageOrderInquiry:  a.orderInquiry,
		PageOrderDisplay:  a.orderDisplay,
		PageSearchRequest: a.searchRequest,
		PageExecuteSearch: a.executeSearch,
		PageNewProducts:   a.newProducts,
		PageBestSellers:   a.bestSellers,
		PageProductDetail: a.productDetail,
		PageAdminRequest:  a.adminRequest,
		PageAdminResponse: a.adminResponse,
	}
	return a
}

// Handler implements server.App.
func (a *App) Handler(path string) (server.HandlerFunc, bool) {
	h, ok := a.routes[path]
	return h, ok
}

// Static implements server.App.
func (a *App) Static(path string) ([]byte, string, bool) {
	body, ok := a.statics[path]
	if !ok {
		return nil, "", false
	}
	return body, "image/gif", true
}

// Templates implements server.App.
func (a *App) Templates() *template.Set { return a.set }

// Items reports the configured item population.
func (a *App) Items() int { return a.items }

// Customers reports the configured customer population.
func (a *App) Customers() int { return a.customers }

// ---- parameter helpers ----

// intParam parses query[name]; fallback is used when absent or invalid.
func intParam(q map[string]string, name string, fallback int) int {
	if s, ok := q[name]; ok {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return fallback
}

func floatParam(q map[string]string, name string, fallback float64) float64 {
	if s, ok := q[name]; ok {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f >= 0 {
			return f
		}
	}
	return fallback
}

// spin rotates the default-parameter counter.
func (a *App) spin() int64 { return a.rotor.Add(1) }

// defaultItem deterministically varies a fallback item id.
func (a *App) defaultItem() int { return int(a.spin()%int64(a.items)) + 1 }

// defaultCustomer deterministically varies a fallback customer id.
func (a *App) defaultCustomer() int { return int(a.spin()%int64(a.customers)) + 1 }

// errPage wraps a handler error with page context.
func errPage(page string, err error) error {
	return fmt.Errorf("tpcw %s: %w", page, err)
}
