package tpcw

import (
	"fmt"
	"math/rand"
	"time"

	"stagedweb/internal/sqldb"
)

// PopulateConfig scales the TPC-W database. The paper's database (one
// million books, 2.88 million customers, 2.59 million orders) is scaled
// down by a constant factor; the paper itself observes that database size
// does not change which queries are fast (indexed) and which are slow
// (scans), so the factor preserves the evaluation's structure.
type PopulateConfig struct {
	Items     int // default 10000
	Customers int // default 2880
	Orders    int // default 2592
	Seed      int64
}

func (c *PopulateConfig) fillDefaults() {
	if c.Items <= 0 {
		c.Items = 10000
	}
	if c.Customers <= 0 {
		c.Customers = 2880
	}
	if c.Orders <= 0 {
		c.Orders = 2592
	}
	if c.Seed == 0 {
		c.Seed = 20090629 // DSN'09 conference date
	}
}

// Counts reports the populated row counts.
type Counts struct {
	Items      int
	Authors    int
	Customers  int
	Addresses  int
	Countries  int
	Orders     int
	OrderLines int
	CCXacts    int
}

// baseDate anchors all generated timestamps so population is fully
// deterministic.
var baseDate = time.Date(2008, 6, 1, 0, 0, 0, 0, time.UTC)

// Populate fills db (whose tables must already exist) with a
// deterministic TPC-W dataset and returns the row counts.
func Populate(db *sqldb.DB, cfg PopulateConfig) (Counts, error) {
	return PopulateShard(db, cfg, nil)
}

// PopulateShard fills db with one shard's slice of the deterministic
// TPC-W dataset: replicated tables (country, author, item, address) in
// full, partitioned tables (customer, orders, order_line, cc_xacts)
// restricted to the customers owns reports true for. owns == nil means
// own everything — a full, unsharded Populate.
//
// The returned Counts are GLOBAL (identical for every shard and to an
// unsharded Populate with the same config): the application sizes its
// parameter ranges from them, and request parameters span the whole
// key space no matter which shard serves the request. Row ids are
// global too — the generator walks the full dataset and skips inserts
// it doesn't own, drawing the same random values either way, so shard
// slices are disjoint, union to the full dataset, and stay stable as
// the shard count changes.
func PopulateShard(db *sqldb.DB, cfg PopulateConfig, owns func(cID int) bool) (Counts, error) {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := db.Connect()
	defer c.Close()

	var counts Counts
	if err := populateCountries(c, &counts); err != nil {
		return counts, err
	}
	if err := populateAuthors(c, rng, cfg, &counts); err != nil {
		return counts, err
	}
	if err := populateItems(c, rng, cfg, &counts); err != nil {
		return counts, err
	}
	if err := populateAddresses(c, rng, cfg, &counts); err != nil {
		return counts, err
	}
	if err := populateCustomers(c, rng, cfg, &counts, owns); err != nil {
		return counts, err
	}
	if err := populateOrders(c, rng, cfg, &counts, owns); err != nil {
		return counts, err
	}
	return counts, nil
}

var countryNames = []string{
	"United States", "United Kingdom", "Canada", "Germany", "France",
	"Japan", "Netherlands", "Italy", "Switzerland", "Australia", "Algeria",
	"Argentina", "Armenia", "Austria", "Azerbaijan", "Bahamas", "Bahrain",
	"Bangladesh", "Barbados", "Belarus", "Belgium", "Bermuda", "Bolivia",
	"Botswana", "Brazil", "Bulgaria", "Cayman Islands", "Chad", "Chile",
	"China", "Christmas Island", "Colombia", "Croatia", "Cuba", "Cyprus",
	"Czech Republic", "Denmark", "Dominican Republic", "Eastern Caribbean",
	"Ecuador", "Egypt", "El Salvador", "Estonia", "Ethiopia",
	"Falkland Islands", "Faroe Islands", "Fiji", "Finland", "Gaza",
	"Gibraltar", "Greece", "Guam", "Hong Kong", "Hungary", "Iceland",
	"India", "Indonesia", "Iran", "Iraq", "Ireland", "Israel", "Jamaica",
	"Jordan", "Kazakhstan", "Kuwait", "Lebanon", "Luxembourg", "Malaysia",
	"Mexico", "Mauritius", "New Zealand", "Norway", "Pakistan",
	"Philippines", "Poland", "Portugal", "Romania", "Russia",
	"Saudi Arabia", "Singapore", "Slovakia", "South Africa", "South Korea",
	"Spain", "Sudan", "Sweden", "Taiwan", "Thailand", "Trinidad",
	"Turkey", "Venezuela", "Zambia",
}

func populateCountries(c *sqldb.Conn, counts *Counts) error {
	for i, name := range countryNames {
		if _, err := c.Exec("INSERT INTO country (co_id, co_name) VALUES (?, ?)", i+1, name); err != nil {
			return fmt.Errorf("tpcw: country %d: %w", i+1, err)
		}
	}
	counts.Countries = len(countryNames)
	return nil
}

var firstNames = []string{
	"James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
	"Linda", "William", "Elizabeth", "David", "Barbara", "Richard", "Susan",
	"Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
}

var titleWords = []string{
	"THE", "SECRET", "LOST", "COMPLETE", "MODERN", "ANCIENT", "HIDDEN",
	"PRACTICAL", "SILENT", "GOLDEN", "BROKEN", "ETERNAL", "GARDEN",
	"JOURNEY", "SHADOW", "RIVER", "MOUNTAIN", "WINTER", "SUMMER", "CITY",
	"HOUSE", "ROAD", "STORY", "ART", "SCIENCE", "HISTORY", "GUIDE",
	"WORLD", "NIGHT", "MORNING", "EMPIRE", "ISLAND", "LETTERS", "DREAMS",
}

func authorCount(cfg PopulateConfig) int {
	n := cfg.Items / 4
	if n < 1 {
		n = 1
	}
	return n
}

func populateAuthors(c *sqldb.Conn, rng *rand.Rand, cfg PopulateConfig, counts *Counts) error {
	n := authorCount(cfg)
	for i := 1; i <= n; i++ {
		if _, err := c.Exec(
			"INSERT INTO author (a_id, a_fname, a_lname, a_bio) VALUES (?, ?, ?, ?)",
			i,
			firstNames[rng.Intn(len(firstNames))],
			lastNames[rng.Intn(len(lastNames))],
			randomWords(rng, 20),
		); err != nil {
			return fmt.Errorf("tpcw: author %d: %w", i, err)
		}
	}
	counts.Authors = n
	return nil
}

func populateItems(c *sqldb.Conn, rng *rand.Rand, cfg PopulateConfig, counts *Counts) error {
	authors := authorCount(cfg)
	for i := 1; i <= cfg.Items; i++ {
		srp := 1 + rng.Float64()*99
		cost := srp * (0.5 + rng.Float64()*0.5)
		pub := baseDate.AddDate(0, 0, -rng.Intn(3650))
		if _, err := c.Exec(
			`INSERT INTO item (i_id, i_title, i_a_id, i_pub_date, i_subject, i_desc,
			 i_thumbnail, i_image, i_srp, i_cost, i_avail, i_stock,
			 i_related1, i_related2, i_related3, i_related4, i_related5)
			 VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`,
			i,
			randomTitle(rng, i),
			1+rng.Intn(authors),
			pub,
			Subjects[rng.Intn(len(Subjects))],
			randomWords(rng, 30),
			fmt.Sprintf("/img/thumb_%d.gif", i%100),
			fmt.Sprintf("/img/image_%d.gif", i%100),
			round2(srp),
			round2(cost),
			pub.AddDate(0, 0, rng.Intn(30)),
			10+rng.Intn(20),
			related(rng, cfg.Items), related(rng, cfg.Items), related(rng, cfg.Items),
			related(rng, cfg.Items), related(rng, cfg.Items),
		); err != nil {
			return fmt.Errorf("tpcw: item %d: %w", i, err)
		}
	}
	counts.Items = cfg.Items
	return nil
}

func populateAddresses(c *sqldb.Conn, rng *rand.Rand, cfg PopulateConfig, counts *Counts) error {
	n := cfg.Customers * 2
	for i := 1; i <= n; i++ {
		if _, err := c.Exec(
			"INSERT INTO address (addr_id, addr_street1, addr_city, addr_state, addr_zip, addr_co_id) VALUES (?, ?, ?, ?, ?, ?)",
			i,
			fmt.Sprintf("%d %s St", 1+rng.Intn(999), titleWords[rng.Intn(len(titleWords))]),
			lastNames[rng.Intn(len(lastNames))]+"ville",
			"ST",
			fmt.Sprintf("%05d", rng.Intn(100000)),
			1+rng.Intn(len(countryNames)),
		); err != nil {
			return fmt.Errorf("tpcw: address %d: %w", i, err)
		}
	}
	counts.Addresses = n
	return nil
}

func populateCustomers(c *sqldb.Conn, rng *rand.Rand, cfg PopulateConfig, counts *Counts, owns func(int) bool) error {
	for i := 1; i <= cfg.Customers; i++ {
		// Draw every random value unconditionally (in the argument order of
		// the unsharded insert) so a shard that skips this customer leaves
		// the rng stream — and therefore every later row — unchanged.
		fname := firstNames[rng.Intn(len(firstNames))]
		lname := lastNames[rng.Intn(len(lastNames))]
		since := baseDate.AddDate(0, 0, -rng.Intn(730))
		discount := round2(rng.Float64() * 0.5)
		addrID := 1 + rng.Intn(cfg.Customers*2)
		if owns != nil && !owns(i) {
			continue
		}
		if _, err := c.Exec(
			`INSERT INTO customer (c_id, c_uname, c_passwd, c_fname, c_lname, c_email,
			 c_since, c_discount, c_addr_id) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)`,
			i,
			Uname(i),
			fmt.Sprintf("pw%d", i),
			fname,
			lname,
			fmt.Sprintf("%s@example.com", Uname(i)),
			since,
			discount,
			addrID,
		); err != nil {
			return fmt.Errorf("tpcw: customer %d: %w", i, err)
		}
	}
	counts.Customers = cfg.Customers
	return nil
}

func populateOrders(c *sqldb.Conn, rng *rand.Rand, cfg PopulateConfig, counts *Counts, owns func(int) bool) error {
	olID := 0
	for o := 1; o <= cfg.Orders; o++ {
		cust := 1 + rng.Intn(cfg.Customers)
		date := baseDate.AddDate(0, 0, -rng.Intn(60))
		nLines := 1 + rng.Intn(5)
		// Orders partition with their owning customer. As in
		// populateCustomers, every random draw below happens whether or not
		// this shard keeps the rows, and olID advances globally, so ids and
		// values match the unsharded dataset exactly.
		keep := owns == nil || owns(cust)
		subTotal := 0.0
		for l := 0; l < nLines; l++ {
			olID++
			qty := 1 + rng.Intn(3)
			item := 1 + rng.Intn(cfg.Items)
			discount := round2(rng.Float64() * 0.1)
			comments := randomWords(rng, 5)
			if keep {
				if _, err := c.Exec(
					"INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount, ol_comments) VALUES (?, ?, ?, ?, ?, ?)",
					olID, o, item, qty, discount, comments,
				); err != nil {
					return fmt.Errorf("tpcw: order line %d: %w", olID, err)
				}
			}
			subTotal += float64(qty) * (1 + rng.Float64()*99)
		}
		total := round2(subTotal * 1.0825)
		shipType := shipTypes[rng.Intn(len(shipTypes))]
		shipDate := date.AddDate(0, 0, 1+rng.Intn(7))
		billAddr := 1 + rng.Intn(cfg.Customers*2)
		shipAddr := 1 + rng.Intn(cfg.Customers*2)
		status := orderStatus[rng.Intn(len(orderStatus))]
		if keep {
			if _, err := c.Exec(
				`INSERT INTO orders (o_id, o_c_id, o_date, o_sub_total, o_total, o_ship_type,
				 o_ship_date, o_bill_addr_id, o_ship_addr_id, o_status)
				 VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`,
				o, cust, date, round2(subTotal), total,
				shipType, shipDate, billAddr, shipAddr, status,
			); err != nil {
				return fmt.Errorf("tpcw: order %d: %w", o, err)
			}
		}
		ccType := ccTypes[rng.Intn(len(ccTypes))]
		ccNum := fmt.Sprintf("%016d", rng.Int63n(1e15))
		ccName := firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
		ccCo := 1 + rng.Intn(len(countryNames))
		if keep {
			if _, err := c.Exec(
				"INSERT INTO cc_xacts (cx_o_id, cx_type, cx_num, cx_name, cx_expire, cx_xact_amt, cx_xact_date, cx_co_id) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
				o, ccType, ccNum, ccName,
				date.AddDate(2, 0, 0), total, date, ccCo,
			); err != nil {
				return fmt.Errorf("tpcw: cc_xact %d: %w", o, err)
			}
		}
	}
	counts.Orders = cfg.Orders
	counts.OrderLines = olID
	counts.CCXacts = cfg.Orders
	return nil
}

var (
	shipTypes   = []string{"AIR", "UPS", "FEDEX", "SHIP", "COURIER", "MAIL"}
	orderStatus = []string{"PROCESSING", "SHIPPED", "PENDING", "DENIED"}
	ccTypes     = []string{"VISA", "MASTERCARD", "DISCOVER", "AMEX", "DINERS"}
)

// Uname returns the deterministic username for a customer id, so the
// workload generator can log in without scanning.
func Uname(cID int) string { return fmt.Sprintf("user%d", cID) }

func randomTitle(rng *rand.Rand, id int) string {
	n := 2 + rng.Intn(3)
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += titleWords[rng.Intn(len(titleWords))]
	}
	return fmt.Sprintf("%s #%d", s, id)
}

func randomWords(rng *rand.Rand, n int) string {
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += titleWords[rng.Intn(len(titleWords))]
	}
	return s
}

func related(rng *rand.Rand, items int) int { return 1 + rng.Intn(items) }

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }
