package tpcw

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// BrowsingMix is the TPC-W "browsing mix" page frequency distribution
// (WIPSb), the workload used throughout the paper's evaluation. Weights
// are percentages and sum to 100.00.
var BrowsingMix = []PageWeight{
	{PageHome, 29.00},
	{PageNewProducts, 11.00},
	{PageBestSellers, 11.00},
	{PageProductDetail, 21.00},
	{PageSearchRequest, 12.00},
	{PageExecuteSearch, 11.00},
	{PageShoppingCart, 2.00},
	{PageCustomerReg, 0.82},
	{PageBuyRequest, 0.75},
	{PageBuyConfirm, 0.69},
	{PageOrderInquiry, 0.30},
	{PageOrderDisplay, 0.25},
	{PageAdminRequest, 0.10},
	{PageAdminResponse, 0.09},
}

// ShoppingMix is the TPC-W "shopping mix" (WIPS, clause 5.2.3): the
// primary TPC-W metric's blend of product browsing and a substantial
// ordering share. Weights sum to 100.00.
var ShoppingMix = []PageWeight{
	{PageHome, 16.00},
	{PageNewProducts, 5.00},
	{PageBestSellers, 5.00},
	{PageProductDetail, 17.00},
	{PageSearchRequest, 20.00},
	{PageExecuteSearch, 17.00},
	{PageShoppingCart, 11.60},
	{PageCustomerReg, 3.00},
	{PageBuyRequest, 2.60},
	{PageBuyConfirm, 1.20},
	{PageOrderInquiry, 0.75},
	{PageOrderDisplay, 0.66},
	{PageAdminRequest, 0.10},
	{PageAdminResponse, 0.09},
}

// OrderingMix is the TPC-W "ordering mix" (WIPSo): checkout-dominated
// traffic that exercises the write path. Weights sum to 100.00.
var OrderingMix = []PageWeight{
	{PageHome, 9.12},
	{PageNewProducts, 0.46},
	{PageBestSellers, 0.46},
	{PageProductDetail, 12.35},
	{PageSearchRequest, 14.53},
	{PageExecuteSearch, 13.08},
	{PageShoppingCart, 13.53},
	{PageCustomerReg, 12.86},
	{PageBuyRequest, 12.73},
	{PageBuyConfirm, 10.18},
	{PageOrderInquiry, 0.25},
	{PageOrderDisplay, 0.22},
	{PageAdminRequest, 0.12},
	{PageAdminResponse, 0.11},
}

// mixes maps the registered mix names to their weight tables.
var mixes = map[string][]PageWeight{
	"browsing": BrowsingMix,
	"shopping": ShoppingMix,
	"ordering": OrderingMix,
}

// MixNames lists the registered mix names, sorted.
func MixNames() []string {
	names := make([]string, 0, len(mixes))
	for name := range mixes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MixByName builds the named TPC-W mix; the empty name selects the
// browsing mix (the paper's workload).
func MixByName(name string) (*Mix, error) {
	if name == "" {
		name = "browsing"
	}
	weights, ok := mixes[name]
	if !ok {
		return nil, fmt.Errorf("tpcw: unknown mix %q (registered: %s)",
			name, strings.Join(MixNames(), ", "))
	}
	return NewMix(weights), nil
}

// PageWeight is one entry of a page mix.
type PageWeight struct {
	Page   string
	Weight float64
}

// Mix draws pages from a weighted distribution.
type Mix struct {
	pages  []string
	cum    []float64
	total  float64
	weight map[string]float64
}

// NewMix builds a sampler over weights. It panics on an empty or
// non-positive mix — a static configuration error.
func NewMix(weights []PageWeight) *Mix {
	if len(weights) == 0 {
		panic("tpcw: empty page mix")
	}
	m := &Mix{weight: make(map[string]float64, len(weights))}
	for _, w := range weights {
		if w.Weight <= 0 {
			panic("tpcw: non-positive mix weight for " + w.Page)
		}
		m.total += w.Weight
		m.pages = append(m.pages, w.Page)
		m.cum = append(m.cum, m.total)
		m.weight[w.Page] = w.Weight
	}
	return m
}

// Pick draws one page using rng.
func (m *Mix) Pick(rng *rand.Rand) string {
	x := rng.Float64() * m.total
	for i, c := range m.cum {
		if x < c {
			return m.pages[i]
		}
	}
	return m.pages[len(m.pages)-1]
}

// Weight reports a page's weight (0 when absent).
func (m *Mix) Weight(page string) float64 { return m.weight[page] }

// Pages lists the mix's pages in declaration order.
func (m *Mix) Pages() []string {
	out := make([]string, len(m.pages))
	copy(out, m.pages)
	return out
}
