package tpcw

import "math/rand"

// BrowsingMix is the TPC-W "browsing mix" page frequency distribution
// (WIPSb), the workload used throughout the paper's evaluation. Weights
// are percentages and sum to 100.00.
var BrowsingMix = []PageWeight{
	{PageHome, 29.00},
	{PageNewProducts, 11.00},
	{PageBestSellers, 11.00},
	{PageProductDetail, 21.00},
	{PageSearchRequest, 12.00},
	{PageExecuteSearch, 11.00},
	{PageShoppingCart, 2.00},
	{PageCustomerReg, 0.82},
	{PageBuyRequest, 0.75},
	{PageBuyConfirm, 0.69},
	{PageOrderInquiry, 0.30},
	{PageOrderDisplay, 0.25},
	{PageAdminRequest, 0.10},
	{PageAdminResponse, 0.09},
}

// PageWeight is one entry of a page mix.
type PageWeight struct {
	Page   string
	Weight float64
}

// Mix draws pages from a weighted distribution.
type Mix struct {
	pages  []string
	cum    []float64
	total  float64
	weight map[string]float64
}

// NewMix builds a sampler over weights. It panics on an empty or
// non-positive mix — a static configuration error.
func NewMix(weights []PageWeight) *Mix {
	if len(weights) == 0 {
		panic("tpcw: empty page mix")
	}
	m := &Mix{weight: make(map[string]float64, len(weights))}
	for _, w := range weights {
		if w.Weight <= 0 {
			panic("tpcw: non-positive mix weight for " + w.Page)
		}
		m.total += w.Weight
		m.pages = append(m.pages, w.Page)
		m.cum = append(m.cum, m.total)
		m.weight[w.Page] = w.Weight
	}
	return m
}

// Pick draws one page using rng.
func (m *Mix) Pick(rng *rand.Rand) string {
	x := rng.Float64() * m.total
	for i, c := range m.cum {
		if x < c {
			return m.pages[i]
		}
	}
	return m.pages[len(m.pages)-1]
}

// Weight reports a page's weight (0 when absent).
func (m *Mix) Weight(page string) float64 { return m.weight[page] }

// Pages lists the mix's pages in declaration order.
func (m *Mix) Pages() []string {
	out := make([]string, len(m.pages))
	copy(out, m.pages)
	return out
}
