package tpcw

import (
	"math/rand"
	"testing"
)

// TestMixFrequencies draws from each registered mix with a fixed seed
// and checks the empirical page frequencies against the configured
// weights within half a percentage point — the workload generator's page
// distribution is exactly the mix table.
func TestMixFrequencies(t *testing.T) {
	const draws = 200000
	for _, name := range MixNames() {
		t.Run(name, func(t *testing.T) {
			m, err := MixByName(name)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			counts := map[string]int{}
			for i := 0; i < draws; i++ {
				counts[m.Pick(rng)]++
			}
			var total float64
			for _, page := range m.Pages() {
				want := m.Weight(page)
				total += want
				got := float64(counts[page]) / draws * 100
				if diff := got - want; diff < -0.5 || diff > 0.5 {
					t.Errorf("%s: frequency %.2f%%, want %.2f%% ± 0.5", page, got, want)
				}
			}
			// The registered mixes are percentage tables; they must sum
			// to 100 so frequencies and weights share a scale.
			if total < 99.99 || total > 100.01 {
				t.Errorf("mix weights sum to %.2f, want 100.00", total)
			}
		})
	}
}

func TestMixByName(t *testing.T) {
	if _, err := MixByName(""); err != nil {
		t.Fatalf("empty name should select browsing: %v", err)
	}
	if _, err := MixByName("no-such-mix"); err == nil {
		t.Fatal("unknown mix accepted")
	}
	names := MixNames()
	if len(names) != 3 {
		t.Fatalf("MixNames = %v, want browsing/ordering/shopping", names)
	}
}
