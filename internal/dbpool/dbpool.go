// Package dbpool provides a bounded pool of database connections — the
// "precious database connection resources" whose utilization the DSN'09
// paper optimizes.
//
// Both server variants draw from a pool of the same size; the difference
// the paper studies is *which threads hold the connections and for how
// long*: the baseline's workers hold one for the entire request
// (including template rendering and static serving), while the modified
// server binds connections only to dynamic-request workers.
package dbpool

import (
	"errors"
	"time"

	"stagedweb/internal/metrics"
	"stagedweb/internal/sqldb"
)

// ErrPoolClosed is returned by Acquire after Close.
var ErrPoolClosed = errors.New("dbpool: pool closed")

// Pool is a fixed-size blocking pool of sqldb connections.
type Pool struct {
	db    *sqldb.DB
	size  int
	conns chan *sqldb.Conn
	done  chan struct{}

	inUse    metrics.Gauge
	waits    metrics.Counter
	waitTime metrics.Histogram
}

// New creates a pool of size connections to db. Size must be positive.
func New(db *sqldb.DB, size int) *Pool {
	if size <= 0 {
		panic("dbpool: non-positive pool size")
	}
	p := &Pool{
		db:    db,
		size:  size,
		conns: make(chan *sqldb.Conn, size),
		done:  make(chan struct{}),
	}
	for i := 0; i < size; i++ {
		p.conns <- db.Connect()
	}
	return p
}

// Size reports the configured number of connections.
func (p *Pool) Size() int { return p.size }

// InUse reports how many connections are currently held.
func (p *Pool) InUse() int { return int(p.inUse.Value()) }

// Idle reports how many connections are available.
func (p *Pool) Idle() int { return len(p.conns) }

// WaitCount reports how many Acquire calls had to block.
func (p *Pool) WaitCount() int64 { return p.waits.Value() }

// WaitTimes exposes the Acquire wait-time histogram (wall time).
func (p *Pool) WaitTimes() *metrics.Histogram { return &p.waitTime }

// Acquire obtains a connection, blocking until one is free or the pool is
// closed.
func (p *Pool) Acquire() (*sqldb.Conn, error) {
	select {
	case <-p.done:
		return nil, ErrPoolClosed
	default:
	}
	// Fast path: no blocking.
	select {
	case c := <-p.conns:
		p.inUse.Inc()
		return c, nil
	default:
	}
	p.waits.Inc()
	start := time.Now()
	select {
	case c := <-p.conns:
		p.waitTime.Observe(time.Since(start))
		p.inUse.Inc()
		return c, nil
	case <-p.done:
		return nil, ErrPoolClosed
	}
}

// TryAcquire obtains a connection without blocking; ok is false when the
// pool is exhausted.
func (p *Pool) TryAcquire() (c *sqldb.Conn, ok bool, err error) {
	select {
	case <-p.done:
		return nil, false, ErrPoolClosed
	default:
	}
	select {
	case c := <-p.conns:
		p.inUse.Inc()
		return c, true, nil
	default:
		return nil, false, nil
	}
}

// Release returns a connection to the pool. Releasing a connection that
// did not come from the pool corrupts accounting and panics when
// detectable (pool overfull).
func (p *Pool) Release(c *sqldb.Conn) {
	if c == nil {
		panic("dbpool: released nil connection")
	}
	p.inUse.Dec()
	select {
	case <-p.done:
		c.Close()
		return
	default:
	}
	select {
	case p.conns <- c:
	default:
		panic("dbpool: released more connections than acquired")
	}
}

// Close closes the pool: waiting Acquires fail, and pooled connections
// are closed. Connections currently held remain usable until released;
// releases after Close are still accepted (and closed).
func (p *Pool) Close() {
	select {
	case <-p.done:
		return
	default:
	}
	close(p.done)
	for {
		select {
		case c := <-p.conns:
			c.Close()
		default:
			return
		}
	}
}
