package dbpool

import (
	"sync"
	"testing"
	"time"

	"stagedweb/internal/sqldb"
)

func newDB(t *testing.T) *sqldb.DB {
	t.Helper()
	db := sqldb.Open(sqldb.Options{})
	db.MustCreateTable(sqldb.Schema{
		Table:      "t",
		Columns:    []sqldb.Column{{Name: "id", Type: sqldb.Int}},
		PrimaryKey: "id",
	})
	return db
}

func TestAcquireRelease(t *testing.T) {
	p := New(newDB(t), 2)
	defer p.Close()
	c1, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if p.InUse() != 1 || p.Idle() != 1 {
		t.Fatalf("InUse/Idle = %d/%d, want 1/1", p.InUse(), p.Idle())
	}
	if _, err := c1.Exec("INSERT INTO t (id) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	p.Release(c1)
	if p.InUse() != 0 || p.Idle() != 2 {
		t.Fatalf("after release InUse/Idle = %d/%d", p.InUse(), p.Idle())
	}
}

func TestAcquireBlocksWhenExhausted(t *testing.T) {
	p := New(newDB(t), 1)
	defer p.Close()
	c1, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan *sqldb.Conn, 1)
	go func() {
		c, err := p.Acquire()
		if err != nil {
			t.Error(err)
			return
		}
		acquired <- c
	}()
	select {
	case <-acquired:
		t.Fatal("Acquire succeeded on exhausted pool")
	case <-time.After(20 * time.Millisecond):
	}
	p.Release(c1)
	select {
	case c := <-acquired:
		p.Release(c)
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire never unblocked")
	}
	if p.WaitCount() == 0 {
		t.Fatal("blocked Acquire not counted")
	}
}

func TestTryAcquire(t *testing.T) {
	p := New(newDB(t), 1)
	defer p.Close()
	c, ok, err := p.TryAcquire()
	if !ok || err != nil {
		t.Fatalf("TryAcquire = %v,%v", ok, err)
	}
	if _, ok2, err := p.TryAcquire(); ok2 || err != nil {
		t.Fatalf("TryAcquire on empty = %v,%v, want false,nil", ok2, err)
	}
	p.Release(c)
}

func TestCloseFailsWaiters(t *testing.T) {
	p := New(newDB(t), 1)
	c, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := p.Acquire()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	p.Close()
	select {
	case err := <-errCh:
		if err != ErrPoolClosed {
			t.Fatalf("err = %v, want ErrPoolClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never failed after Close")
	}
	p.Release(c) // release after close must not panic
	if _, err := p.Acquire(); err != ErrPoolClosed {
		t.Fatalf("Acquire after close = %v", err)
	}
	p.Close() // idempotent
}

func TestReleaseForeignPanics(t *testing.T) {
	db := newDB(t)
	p := New(db, 1)
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("overfull release did not panic")
		}
	}()
	p.Release(db.Connect()) // never acquired: pool goes overfull
}

func TestReleaseNilPanics(t *testing.T) {
	p := New(newDB(t), 1)
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("nil release did not panic")
		}
	}()
	p.Release(nil)
}

func TestInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero size did not panic")
		}
	}()
	New(newDB(t), 0)
}

func TestConcurrentChurn(t *testing.T) {
	p := New(newDB(t), 4)
	defer p.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c, err := p.Acquire()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Query("SELECT * FROM t"); err != nil {
					t.Error(err)
				}
				p.Release(c)
			}
		}(i)
	}
	wg.Wait()
	if p.InUse() != 0 {
		t.Fatalf("InUse = %d after churn, want 0", p.InUse())
	}
	if p.Idle() != 4 {
		t.Fatalf("Idle = %d, want 4", p.Idle())
	}
}
