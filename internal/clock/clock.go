// Package clock provides time sources for the staged web server and its
// experiment harness.
//
// Two implementations are provided: Real, backed by the runtime clock, and
// Manual, a deterministic clock for tests that only advances when told to.
// All latency-sensitive components (database cost model, think times,
// reserve controller ticks, queue samplers) take a Clock so that unit tests
// are deterministic and experiments can run at a scaled pace.
package clock

import "time"

// Clock is an abstract time source.
type Clock interface {
	// Now reports the current time.
	Now() time.Time
	// Sleep blocks the calling goroutine for d. Non-positive d returns
	// immediately.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTicker returns a ticker firing every d. d must be positive.
	NewTicker(d time.Duration) Ticker
	// Since reports the time elapsed since t.
	Since(t time.Time) time.Duration
}

// Ticker delivers ticks on C until stopped.
type Ticker interface {
	// C is the channel on which ticks are delivered.
	C() <-chan time.Time
	// Stop turns off the ticker. Stop does not close C.
	Stop()
}

// Real is a Clock backed by the runtime clock. The zero value is ready to
// use.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

type realTicker struct{ t *time.Ticker }

func (rt realTicker) C() <-chan time.Time { return rt.t.C }
func (rt realTicker) Stop()               { rt.t.Stop() }
