package clock

import (
	"testing"
	"time"
)

func TestPreciseSleepShortDurations(t *testing.T) {
	c := Precise{}
	for _, d := range []time.Duration{5 * time.Microsecond, 50 * time.Microsecond, 200 * time.Microsecond} {
		start := time.Now()
		c.Sleep(d)
		elapsed := time.Since(start)
		if elapsed < d {
			t.Fatalf("Sleep(%v) returned after %v (too early)", d, elapsed)
		}
		// Precision bound: an order of magnitude tighter than the timer
		// floor for these micro-sleeps.
		if elapsed > d+2*time.Millisecond {
			t.Fatalf("Sleep(%v) took %v (too imprecise)", d, elapsed)
		}
	}
}

func TestPreciseSleepLongDuration(t *testing.T) {
	c := Precise{}
	start := time.Now()
	c.Sleep(5 * time.Millisecond)
	elapsed := time.Since(start)
	if elapsed < 5*time.Millisecond {
		t.Fatalf("Sleep(5ms) returned after %v", elapsed)
	}
	if elapsed > 15*time.Millisecond {
		t.Fatalf("Sleep(5ms) took %v", elapsed)
	}
}

func TestPreciseSleepNonPositive(t *testing.T) {
	c := Precise{}
	start := time.Now()
	c.Sleep(0)
	c.Sleep(-time.Second)
	if time.Since(start) > 10*time.Millisecond {
		t.Fatal("non-positive sleep blocked")
	}
}

func TestPreciseClockInterface(t *testing.T) {
	c := Precise{}
	if c.Now().IsZero() {
		t.Fatal("Now is zero")
	}
	if c.Since(c.Now().Add(-time.Second)) < time.Second {
		t.Fatal("Since wrong")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("After never fired")
	}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(5 * time.Second):
		t.Fatal("ticker never fired")
	}
}
