package clock

import (
	"testing"
	"time"
)

func TestTimescaleWall(t *testing.T) {
	tests := []struct {
		name  string
		scale Timescale
		paper time.Duration
		want  time.Duration
	}{
		{"real time identity", RealTime, 3 * time.Second, 3 * time.Second},
		{"default compresses 100x", DefaultScale, time.Second, 10 * time.Millisecond},
		{"two paper seconds at 100x", DefaultScale, 2 * time.Second, 20 * time.Millisecond},
		{"fifty paper minutes at 100x", DefaultScale, 50 * time.Minute, 30 * time.Second},
		{"fractional scale", Timescale(2), time.Second, 500 * time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.scale.Wall(tt.paper); got != tt.want {
				t.Fatalf("Wall(%v) = %v, want %v", tt.paper, got, tt.want)
			}
		})
	}
}

func TestTimescalePaperRoundTrip(t *testing.T) {
	s := DefaultScale
	paper := 7 * time.Second
	if got := s.Paper(s.Wall(paper)); got != paper {
		t.Fatalf("round trip = %v, want %v", got, paper)
	}
}

func TestTimescalePaperSeconds(t *testing.T) {
	s := Timescale(100)
	// 10ms wall at 100x is one paper second.
	if got := s.PaperSeconds(10 * time.Millisecond); got != 1.0 {
		t.Fatalf("PaperSeconds = %v, want 1.0", got)
	}
}

func TestTimescaleInvalidPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Timescale(0).Wall(time.Second) },
		func() { Timescale(-1).Wall(time.Second) },
		func() { Timescale(0).Paper(time.Second) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid timescale did not panic")
				}
			}()
			fn()
		}()
	}
}
