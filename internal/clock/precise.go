package clock

import (
	"runtime"
	"time"
)

// Precise is a Clock whose Sleep is accurate for very short durations.
//
// Scaled experiments compress paper-time latencies by 100–200x, turning a
// 1 ms database charge into a 5–10 µs sleep. The runtime timer's wake-up
// granularity (tens of microseconds to a millisecond under load) would
// inflate every such charge by an order of magnitude and crush the
// fast/slow contrast the evaluation measures. Precise busy-waits (with
// scheduler yields) below a threshold and delegates longer sleeps to the
// timer, giving microsecond fidelity at a bounded CPU cost.
type Precise struct{}

var _ Clock = Precise{}

// spinThreshold is the boundary between busy-waiting and timer sleeps.
const spinThreshold = 500 * time.Microsecond

// Now implements Clock.
func (Precise) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Precise) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep implements Clock with sub-threshold spin-waiting.
func (Precise) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= spinThreshold {
		// Sleep the bulk on the timer, spin the remainder.
		deadline := time.Now().Add(d)
		time.Sleep(d - spinThreshold/2)
		spinUntil(deadline)
		return
	}
	spinUntil(time.Now().Add(d))
}

func spinUntil(deadline time.Time) {
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// After implements Clock (timer-based; use Sleep for precision).
func (Precise) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTicker implements Clock (timer-based).
func (Precise) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }
