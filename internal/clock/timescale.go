package clock

import "time"

// Timescale converts between "paper time" — durations as reported in the
// DSN'09 evaluation (seconds-scale database queries, 0.7–7 s think times,
// a 50-minute measurement window) — and wall time on the machine running
// the reproduction.
//
// A Timescale of 100 means one paper-second elapses in 10 ms of wall time,
// so the paper's one-hour experiment completes in 36 s while every ratio
// (response-time factors, throughput shares, queue dynamics) is preserved.
type Timescale float64

// Common scales.
const (
	// RealTime runs paper durations unscaled.
	RealTime Timescale = 1
	// DefaultScale compresses one paper-second to 10 ms.
	DefaultScale Timescale = 100
)

// Wall converts a paper duration to a wall duration.
func (s Timescale) Wall(paper time.Duration) time.Duration {
	if s <= 0 {
		panic("clock: non-positive timescale")
	}
	return time.Duration(float64(paper) / float64(s))
}

// Paper converts a wall duration back to paper time, e.g. for reporting
// measured response times in the paper's units.
func (s Timescale) Paper(wall time.Duration) time.Duration {
	if s <= 0 {
		panic("clock: non-positive timescale")
	}
	return time.Duration(float64(wall) * float64(s))
}

// PaperSeconds converts a wall duration to paper seconds as a float, the
// unit used by the paper's tables.
func (s Timescale) PaperSeconds(wall time.Duration) float64 {
	return s.Paper(wall).Seconds()
}
