package clock

import (
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestManualNowFrozen(t *testing.T) {
	m := NewManual(epoch)
	if got := m.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	if got := m.Now(); !got.Equal(epoch) {
		t.Fatalf("second Now() = %v, want %v (time must stand still)", got, epoch)
	}
}

func TestManualAdvance(t *testing.T) {
	m := NewManual(epoch)
	m.Advance(90 * time.Second)
	want := epoch.Add(90 * time.Second)
	if got := m.Now(); !got.Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", got, want)
	}
}

func TestManualAfterFiresAtDeadline(t *testing.T) {
	m := NewManual(epoch)
	ch := m.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	m.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired 1s early")
	default:
	}
	m.Advance(time.Second)
	select {
	case at := <-ch:
		if want := epoch.Add(10 * time.Second); !at.Equal(want) {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("After did not fire at its deadline")
	}
}

func TestManualAfterNonPositive(t *testing.T) {
	m := NewManual(epoch)
	select {
	case <-m.After(0):
	default:
		t.Fatal("After(0) should fire immediately")
	}
	select {
	case <-m.After(-time.Second):
	default:
		t.Fatal("After(-1s) should fire immediately")
	}
}

func TestManualSleepWakesOnAdvance(t *testing.T) {
	m := NewManual(epoch)
	done := make(chan struct{})
	go func() {
		m.Sleep(5 * time.Second)
		close(done)
	}()
	m.BlockUntilWaiters(1)
	m.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep never woke")
	}
}

func TestManualSleepZeroReturns(t *testing.T) {
	m := NewManual(epoch)
	done := make(chan struct{})
	go func() {
		m.Sleep(0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep(0) blocked")
	}
}

func TestManualTickerPeriodic(t *testing.T) {
	m := NewManual(epoch)
	tk := m.NewTicker(time.Second)
	defer tk.Stop()

	// Advance one second at a time so each tick can be consumed; ticks are
	// dropped (not queued) when nobody is receiving, like time.Ticker with
	// its 1-buffered channel.
	for i := 1; i <= 3; i++ {
		m.Advance(time.Second)
		select {
		case at := <-tk.C():
			want := epoch.Add(time.Duration(i) * time.Second)
			if !at.Equal(want) {
				t.Fatalf("tick %d at %v, want %v", i, at, want)
			}
		default:
			t.Fatalf("tick %d not delivered", i)
		}
	}
}

func TestManualTickerStop(t *testing.T) {
	m := NewManual(epoch)
	tk := m.NewTicker(time.Second)
	tk.Stop()
	m.Advance(10 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker fired")
	default:
	}
}

func TestManualTickerDropsMissedTicks(t *testing.T) {
	m := NewManual(epoch)
	tk := m.NewTicker(time.Second)
	defer tk.Stop()
	m.Advance(10 * time.Second) // nobody receiving: only 1 buffered tick survives
	n := 0
	for {
		select {
		case <-tk.C():
			n++
		default:
			if n != 1 {
				t.Fatalf("got %d buffered ticks, want 1", n)
			}
			return
		}
	}
}

func TestManualOrderOfFiring(t *testing.T) {
	m := NewManual(epoch)
	chB := m.After(2 * time.Second) // registered first, due later
	chA := m.After(1 * time.Second)
	m.Advance(time.Second)
	select {
	case <-chB:
		t.Fatal("later deadline fired first")
	default:
	}
	select {
	case at := <-chA:
		if want := epoch.Add(time.Second); !at.Equal(want) {
			t.Fatalf("a fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("earlier deadline did not fire")
	}
	m.Advance(time.Second)
	select {
	case <-chB:
	default:
		t.Fatal("later deadline did not fire after full window")
	}
}

func TestManualSet(t *testing.T) {
	m := NewManual(epoch)
	target := epoch.Add(time.Hour)
	m.Set(target)
	if got := m.Now(); !got.Equal(target) {
		t.Fatalf("Now() = %v, want %v", got, target)
	}
}

func TestManualSetPastPanics(t *testing.T) {
	m := NewManual(epoch)
	defer func() {
		if recover() == nil {
			t.Fatal("Set into the past did not panic")
		}
	}()
	m.Set(epoch.Add(-time.Second))
}

func TestManualNegativeAdvancePanics(t *testing.T) {
	m := NewManual(epoch)
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	m.Advance(-time.Second)
}

func TestManualSince(t *testing.T) {
	m := NewManual(epoch)
	start := m.Now()
	m.Advance(42 * time.Second)
	if d := m.Since(start); d != 42*time.Second {
		t.Fatalf("Since = %v, want 42s", d)
	}
}

func TestManualWaiters(t *testing.T) {
	m := NewManual(epoch)
	if n := m.Waiters(); n != 0 {
		t.Fatalf("Waiters = %d, want 0", n)
	}
	_ = m.After(time.Second)
	tk := m.NewTicker(time.Second)
	if n := m.Waiters(); n != 2 {
		t.Fatalf("Waiters = %d, want 2", n)
	}
	tk.Stop()
	if n := m.Waiters(); n != 1 {
		t.Fatalf("Waiters after Stop = %d, want 1", n)
	}
}
