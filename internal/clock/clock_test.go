package clock

import (
	"testing"
	"time"
)

func TestRealNow(t *testing.T) {
	c := Real{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v, want between %v and %v", got, before, after)
	}
}

func TestRealSleepNonPositive(t *testing.T) {
	c := Real{}
	start := time.Now()
	c.Sleep(-time.Hour)
	c.Sleep(0)
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("non-positive Sleep blocked for %v", elapsed)
	}
}

func TestRealSleepBlocks(t *testing.T) {
	c := Real{}
	start := time.Now()
	c.Sleep(10 * time.Millisecond)
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("Sleep returned after %v, want >= 10ms", elapsed)
	}
}

func TestRealAfter(t *testing.T) {
	c := Real{}
	select {
	case <-c.After(5 * time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("After never fired")
	}
}

func TestRealTicker(t *testing.T) {
	c := Real{}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	for i := 0; i < 3; i++ {
		select {
		case <-tk.C():
		case <-time.After(5 * time.Second):
			t.Fatal("ticker never fired")
		}
	}
}

func TestRealSince(t *testing.T) {
	c := Real{}
	start := c.Now()
	c.Sleep(5 * time.Millisecond)
	if d := c.Since(start); d < 5*time.Millisecond {
		t.Fatalf("Since = %v, want >= 5ms", d)
	}
}
