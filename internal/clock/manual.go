package clock

import (
	"sort"
	"sync"
	"time"
)

// Manual is a deterministic Clock for tests. Time stands still until
// Advance is called; sleepers and tickers whose deadlines fall inside the
// advanced window fire in deadline order.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*manualWaiter
}

var _ Clock = (*Manual)(nil)

type manualWaiter struct {
	at       time.Time
	ch       chan time.Time
	period   time.Duration // 0 for one-shot
	stopped  bool
	sequence int
}

// NewManual returns a Manual clock whose current time is start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Since implements Clock.
func (m *Manual) Since(t time.Time) time.Duration { return m.Now().Sub(t) }

// Sleep implements Clock. It blocks until the clock has been advanced past
// the deadline by another goroutine.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.After(d)
}

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &manualWaiter{at: m.now.Add(d), ch: make(chan time.Time, 1), sequence: len(m.waiters)}
	if d <= 0 {
		w.ch <- m.now
		return w.ch
	}
	m.waiters = append(m.waiters, w)
	return w.ch
}

// NewTicker implements Clock.
func (m *Manual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &manualWaiter{at: m.now.Add(d), ch: make(chan time.Time, 1), period: d, sequence: len(m.waiters)}
	m.waiters = append(m.waiters, w)
	return &manualTicker{clock: m, w: w}
}

type manualTicker struct {
	clock *Manual
	w     *manualWaiter
}

func (t *manualTicker) C() <-chan time.Time { return t.w.ch }

func (t *manualTicker) Stop() {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	t.w.stopped = true
}

// Advance moves the clock forward by d, firing every waiter whose deadline
// falls within the window, in deadline order. Periodic waiters re-arm and
// may fire multiple times. Advance never blocks on receivers: like
// time.Ticker, ticks that cannot be delivered are dropped.
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: negative advance")
	}
	m.mu.Lock()
	target := m.now.Add(d)
	for {
		w := m.nextDueLocked(target)
		if w == nil {
			break
		}
		m.now = w.at
		select {
		case w.ch <- w.at:
		default:
		}
		if w.period > 0 {
			w.at = w.at.Add(w.period)
		} else {
			m.removeLocked(w)
		}
	}
	m.now = target
	m.mu.Unlock()
}

// Set jumps the clock to t (which must not be in the past), firing due
// waiters along the way.
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	now := m.now
	m.mu.Unlock()
	if t.Before(now) {
		panic("clock: Set into the past")
	}
	m.Advance(t.Sub(now))
}

// Waiters reports how many outstanding sleepers/tickers are registered.
// Useful for tests that must synchronize with goroutines entering Sleep.
func (m *Manual) Waiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, w := range m.waiters {
		if !w.stopped {
			n++
		}
	}
	return n
}

// BlockUntilWaiters polls until at least n live waiters are registered.
// It is intended for tests only and spins with a runtime yield.
func (m *Manual) BlockUntilWaiters(n int) {
	for m.Waiters() < n {
		// Busy-wait with a real sleep so the other goroutine can run.
		time.Sleep(50 * time.Microsecond)
	}
}

// nextDueLocked returns the earliest live waiter due at or before target,
// breaking ties by registration order, or nil if none are due.
func (m *Manual) nextDueLocked(target time.Time) *manualWaiter {
	live := m.waiters[:0:0]
	for _, w := range m.waiters {
		if !w.stopped {
			live = append(live, w)
		}
	}
	sort.SliceStable(live, func(i, j int) bool {
		if !live[i].at.Equal(live[j].at) {
			return live[i].at.Before(live[j].at)
		}
		return live[i].sequence < live[j].sequence
	})
	if len(live) == 0 || live[0].at.After(target) {
		return nil
	}
	return live[0]
}

func (m *Manual) removeLocked(target *manualWaiter) {
	for i, w := range m.waiters {
		if w == target {
			m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
			return
		}
	}
}
