// Package pool implements the bounded synchronized queues and fixed-size
// worker pools that model the paper's thread pools.
//
// CherryPy's request machinery — a listener placing work on a synchronized
// queue drained by a fixed pool of threads — maps onto a Queue plus a Pool
// of goroutines. Queue length and pool spare-worker counts are exposed as
// gauges because both are inputs to the DSN'09 scheduling policy (t_spare)
// and outputs of its evaluation (Figures 7 and 8).
package pool

import (
	"errors"
	"sync"
)

// ErrClosed is returned by Put after Close.
var ErrClosed = errors.New("pool: queue closed")

// Queue is a bounded, synchronized FIFO. Put blocks while the queue is
// full; Get blocks while it is empty. The zero value is not usable — use
// NewQueue.
type Queue[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond

	buf    []T
	head   int
	count  int
	closed bool

	enqueued int64
	dequeued int64
	maxLen   int
}

// NewQueue returns a queue holding at most capacity items. Capacity must
// be positive.
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity <= 0 {
		panic("pool: non-positive queue capacity")
	}
	q := &Queue[T]{buf: make([]T, capacity)}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Put appends item, blocking while the queue is full. It returns ErrClosed
// if the queue has been closed (including while blocked).
func (q *Queue[T]) Put(item T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == len(q.buf) && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	q.putLocked(item)
	return nil
}

// TryPut appends item without blocking. It reports false if the queue is
// full and ErrClosed if closed.
func (q *Queue[T]) TryPut(item T) (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, ErrClosed
	}
	if q.count == len(q.buf) {
		return false, nil
	}
	q.putLocked(item)
	return true, nil
}

func (q *Queue[T]) putLocked(item T) {
	tail := (q.head + q.count) % len(q.buf)
	q.buf[tail] = item
	q.count++
	q.enqueued++
	if q.count > q.maxLen {
		q.maxLen = q.count
	}
	q.notEmpty.Signal()
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. ok is false once the queue is closed and drained.
func (q *Queue[T]) Get() (item T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.count == 0 {
		var zero T
		return zero, false
	}
	item = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release reference for GC
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.dequeued++
	q.notFull.Signal()
	return item, true
}

// Close marks the queue closed. Blocked Puts fail with ErrClosed; blocked
// Gets drain remaining items and then report ok=false. Close is
// idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}

// Len reports the current number of queued items. This is the quantity
// plotted in Figures 7 and 8 of the paper.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Cap reports the queue capacity.
func (q *Queue[T]) Cap() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// Stats is a snapshot of queue activity.
type Stats struct {
	Len      int
	Cap      int
	Enqueued int64
	Dequeued int64
	MaxLen   int
	Closed   bool
}

// Stats returns a consistent snapshot of the queue counters.
func (q *Queue[T]) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Len:      q.count,
		Cap:      len(q.buf),
		Enqueued: q.enqueued,
		Dequeued: q.dequeued,
		MaxLen:   q.maxLen,
		Closed:   q.closed,
	}
}
