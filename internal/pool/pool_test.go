package pool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolProcessesAll(t *testing.T) {
	q := NewQueue[int](16)
	var sum atomic.Int64
	p := New("test", 4, q, func(v int) { sum.Add(int64(v)) })
	p.Start()
	total := 0
	for i := 1; i <= 100; i++ {
		if err := q.Put(i); err != nil {
			t.Fatal(err)
		}
		total += i
	}
	p.Stop()
	if got := sum.Load(); got != int64(total) {
		t.Fatalf("sum = %d, want %d", got, total)
	}
	if got := p.Completed(); got != 100 {
		t.Fatalf("Completed = %d, want 100", got)
	}
}

func TestPoolSpareTracking(t *testing.T) {
	q := NewQueue[chan struct{}](16)
	p := New("test", 4, q, func(release chan struct{}) { <-release })
	p.Start()
	defer p.Stop()

	if got := p.Spare(); got != 4 {
		t.Fatalf("initial Spare = %d, want 4", got)
	}

	releases := make([]chan struct{}, 3)
	for i := range releases {
		releases[i] = make(chan struct{})
		if err := q.Put(releases[i]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return p.Busy() == 3 })
	if got := p.Spare(); got != 1 {
		t.Fatalf("Spare with 3 busy = %d, want 1", got)
	}
	for _, r := range releases {
		close(r)
	}
	waitFor(t, func() bool { return p.Spare() == 4 })
}

func TestPoolStopWaitsForInFlight(t *testing.T) {
	q := NewQueue[struct{}](1)
	var finished atomic.Bool
	started := make(chan struct{})
	p := New("test", 1, q, func(struct{}) {
		close(started)
		time.Sleep(30 * time.Millisecond)
		finished.Store(true)
	})
	p.Start()
	if err := q.Put(struct{}{}); err != nil {
		t.Fatal(err)
	}
	<-started
	p.Stop()
	if !finished.Load() {
		t.Fatal("Stop returned before in-flight work finished")
	}
}

func TestPoolStopDrainsQueue(t *testing.T) {
	q := NewQueue[int](64)
	var n atomic.Int64
	p := New("test", 2, q, func(int) { n.Add(1) })
	for i := 0; i < 50; i++ {
		if err := q.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	p.Start()
	p.Stop()
	if got := n.Load(); got != 50 {
		t.Fatalf("processed %d, want 50 (Stop must drain)", got)
	}
}

func TestPoolDoubleStartPanics(t *testing.T) {
	q := NewQueue[int](1)
	p := New("test", 1, q, func(int) {})
	p.Start()
	defer p.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	p.Start()
}

func TestPoolInvalidConfigPanics(t *testing.T) {
	q := NewQueue[int](1)
	for name, fn := range map[string]func(){
		"zero size": func() { New("x", 0, q, func(int) {}) },
		"nil work":  func() { New[int]("x", 1, q, nil) },
		"nil queue": func() { New("x", 1, nil, func(int) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPoolBoundedConcurrency(t *testing.T) {
	q := NewQueue[struct{}](128)
	var cur, peak atomic.Int64
	var mu sync.Mutex
	p := New("test", 3, q, func(struct{}) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		cur.Add(-1)
	})
	p.Start()
	for i := 0; i < 60; i++ {
		if err := q.Put(struct{}{}); err != nil {
			t.Fatal(err)
		}
	}
	p.Stop()
	if got := peak.Load(); got > 3 {
		t.Fatalf("peak concurrency %d exceeds pool size 3", got)
	}
}

func TestPoolAccessors(t *testing.T) {
	q := NewQueue[int](2)
	p := New("header-parsing", 5, q, func(int) {})
	if p.Name() != "header-parsing" {
		t.Fatalf("Name = %q", p.Name())
	}
	if p.Size() != 5 {
		t.Fatalf("Size = %d", p.Size())
	}
	if p.Queue() != q {
		t.Fatal("Queue accessor mismatch")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
