package pool

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](4)
	for i := 1; i <= 4; i++ {
		if err := q.Put(i); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	for i := 1; i <= 4; i++ {
		got, ok := q.Get()
		if !ok || got != i {
			t.Fatalf("Get = %d,%v, want %d,true", got, ok, i)
		}
	}
}

func TestQueueWrapAround(t *testing.T) {
	q := NewQueue[int](2)
	mustPut := func(v int) {
		t.Helper()
		if err := q.Put(v); err != nil {
			t.Fatal(err)
		}
	}
	mustGet := func(want int) {
		t.Helper()
		got, ok := q.Get()
		if !ok || got != want {
			t.Fatalf("Get = %d,%v, want %d,true", got, ok, want)
		}
	}
	mustPut(1)
	mustPut(2)
	mustGet(1)
	mustPut(3) // wraps
	mustGet(2)
	mustGet(3)
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
}

func TestQueuePutBlocksWhenFull(t *testing.T) {
	q := NewQueue[int](1)
	if err := q.Put(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- q.Put(2) }()
	select {
	case <-done:
		t.Fatal("Put returned while queue full")
	case <-time.After(20 * time.Millisecond):
	}
	if got, ok := q.Get(); !ok || got != 1 {
		t.Fatalf("Get = %d,%v", got, ok)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("unblocked Put: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Put never unblocked")
	}
}

func TestQueueGetBlocksWhenEmpty(t *testing.T) {
	q := NewQueue[int](1)
	got := make(chan int, 1)
	go func() {
		v, _ := q.Get()
		got <- v
	}()
	select {
	case <-got:
		t.Fatal("Get returned on empty queue")
	case <-time.After(20 * time.Millisecond):
	}
	if err := q.Put(42); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("Get = %d, want 42", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Get never unblocked")
	}
}

func TestQueueTryPut(t *testing.T) {
	q := NewQueue[int](1)
	ok, err := q.TryPut(1)
	if !ok || err != nil {
		t.Fatalf("TryPut = %v,%v, want true,nil", ok, err)
	}
	ok, err = q.TryPut(2)
	if ok || err != nil {
		t.Fatalf("TryPut on full = %v,%v, want false,nil", ok, err)
	}
	q.Close()
	if _, err := q.TryPut(3); err != ErrClosed {
		t.Fatalf("TryPut on closed = %v, want ErrClosed", err)
	}
}

func TestQueueCloseUnblocksPut(t *testing.T) {
	q := NewQueue[int](1)
	if err := q.Put(1); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- q.Put(2) }()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case err := <-errCh:
		if err != ErrClosed {
			t.Fatalf("Put after close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Put never unblocked by Close")
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue[int](4)
	_ = q.Put(1)
	_ = q.Put(2)
	q.Close()
	if v, ok := q.Get(); !ok || v != 1 {
		t.Fatalf("Get = %d,%v, want 1,true", v, ok)
	}
	if v, ok := q.Get(); !ok || v != 2 {
		t.Fatalf("Get = %d,%v, want 2,true", v, ok)
	}
	if _, ok := q.Get(); ok {
		t.Fatal("Get after drain should report !ok")
	}
}

func TestQueueCloseIdempotent(t *testing.T) {
	q := NewQueue[int](1)
	q.Close()
	q.Close()
	if _, ok := q.Get(); ok {
		t.Fatal("Get on closed empty queue should report !ok")
	}
}

func TestQueueStats(t *testing.T) {
	q := NewQueue[int](4)
	_ = q.Put(1)
	_ = q.Put(2)
	_, _ = q.Get()
	s := q.Stats()
	if s.Enqueued != 2 || s.Dequeued != 1 || s.Len != 1 || s.MaxLen != 2 || s.Cap != 4 || s.Closed {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestQueueInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewQueue[int](0)
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue[int](8)
	const producers, perP = 8, 200
	var consumed sync.Map
	var wg sync.WaitGroup

	var consumerWG sync.WaitGroup
	consumerWG.Add(4)
	for i := 0; i < 4; i++ {
		go func() {
			defer consumerWG.Done()
			for {
				v, ok := q.Get()
				if !ok {
					return
				}
				consumed.Store(v, true)
			}
		}()
	}

	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				if err := q.Put(base*perP + i); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	q.Close()
	consumerWG.Wait()

	count := 0
	consumed.Range(func(_, _ any) bool { count++; return true })
	if count != producers*perP {
		t.Fatalf("consumed %d distinct items, want %d", count, producers*perP)
	}
}

// Property: for any sequence of puts below capacity, gets return the same
// sequence (FIFO order preserved).
func TestQueueFIFOProperty(t *testing.T) {
	f := func(items []int16) bool {
		if len(items) == 0 {
			return true
		}
		q := NewQueue[int16](len(items))
		for _, it := range items {
			if err := q.Put(it); err != nil {
				return false
			}
		}
		for _, want := range items {
			got, ok := q.Get()
			if !ok || got != want {
				return false
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
