package pool

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size set of workers draining a Queue. Each worker
// corresponds to one thread of a CherryPy pool; the busy/spare split is
// tracked because the paper's dispatcher reads the general pool's spare
// count (t_spare) on every lengthy-request dispatch.
type Pool[T any] struct {
	name  string
	size  int
	queue *Queue[T]
	work  func(T)

	busy      atomic.Int64
	completed atomic.Int64
	wg        sync.WaitGroup
	started   atomic.Bool
}

// New returns an unstarted pool of size workers draining queue with work.
// Size must be positive; work must be non-nil.
func New[T any](name string, size int, queue *Queue[T], work func(T)) *Pool[T] {
	if size <= 0 {
		panic(fmt.Sprintf("pool %q: non-positive size %d", name, size))
	}
	if work == nil {
		panic(fmt.Sprintf("pool %q: nil work function", name))
	}
	if queue == nil {
		panic(fmt.Sprintf("pool %q: nil queue", name))
	}
	return &Pool[T]{name: name, size: size, queue: queue, work: work}
}

// Start launches the workers. It panics if called twice.
func (p *Pool[T]) Start() {
	if !p.started.CompareAndSwap(false, true) {
		panic(fmt.Sprintf("pool %q: started twice", p.name))
	}
	p.wg.Add(p.size)
	for i := 0; i < p.size; i++ {
		go p.worker()
	}
}

func (p *Pool[T]) worker() {
	defer p.wg.Done()
	for {
		item, ok := p.queue.Get()
		if !ok {
			return
		}
		p.busy.Add(1)
		p.work(item)
		p.busy.Add(-1)
		p.completed.Add(1)
	}
}

// Stop closes the queue and waits for all workers to finish in-flight
// work and drain remaining items.
func (p *Pool[T]) Stop() {
	p.queue.Close()
	p.wg.Wait()
}

// Name reports the pool's name.
func (p *Pool[T]) Name() string { return p.name }

// Size reports the configured worker count.
func (p *Pool[T]) Size() int { return p.size }

// Busy reports how many workers are currently executing work.
func (p *Pool[T]) Busy() int { return int(p.busy.Load()) }

// Spare reports the number of idle workers. This is the paper's t_spare
// when read on the general dynamic pool.
func (p *Pool[T]) Spare() int {
	s := p.size - int(p.busy.Load())
	if s < 0 {
		s = 0
	}
	return s
}

// Completed reports how many work items have finished.
func (p *Pool[T]) Completed() int64 { return p.completed.Load() }

// Queue returns the pool's input queue, e.g. for length sampling.
func (p *Pool[T]) Queue() *Queue[T] { return p.queue }
