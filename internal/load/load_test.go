package load

import (
	"testing"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/core"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/variant"
	"stagedweb/internal/webtest"
)

func TestRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{Steady, Step, Ramp, Spike, Wave, OpenLoop} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("built-in profile %q not registered (have %v)", want, names)
		}
	}
	if _, ok := Lookup("no-such-profile"); ok {
		t.Fatal("phantom profile resolved")
	}
}

// build resolves and builds a named profile, failing the test on error.
func build(t *testing.T, name string, env Env) *driver {
	t.Helper()
	p, ok := Lookup(name)
	if !ok {
		t.Fatalf("profile %q not registered", name)
	}
	d, err := p.Build(env)
	if err != nil {
		t.Fatal(err)
	}
	return d.(*driver)
}

func testEnv() Env {
	return Env{Addr: "127.0.0.1:0", Scale: clock.Timescale(1000), Seed: 1}
}

func TestUnknownSettingRejected(t *testing.T) {
	for _, name := range Names() {
		p, _ := Lookup(name)
		env := testEnv()
		env.Set = variant.Settings{"bogus": "1"}
		if _, err := p.Build(env); err == nil {
			t.Errorf("%s: unknown setting accepted", name)
		}
	}
}

// TestSchedules pins the population schedules the built-in profiles
// compute, including the defaults lowered from the harness EBs shim.
func TestSchedules(t *testing.T) {
	env := testEnv()
	env.Defaults = variant.Settings{"ebs": "100"}

	spike := build(t, Spike, env)
	env.Set = variant.Settings{"burst": "50", "at": "2m", "width": "1m"}
	spikeSet := build(t, Spike, env)
	env.Set = nil
	step := build(t, Step, env)
	env.Set = variant.Settings{"to": "40", "over": "100s", "delay": "10s"}
	ramp := build(t, Ramp, env)
	env.Set = variant.Settings{"amp": "60", "period": "80s"}
	wave := build(t, Wave, env)

	cases := []struct {
		name string
		d    *driver
		at   time.Duration
		want int
	}{
		// spike defaults: base=ebs default, burst=2x, at=1m, width=30s.
		{"spike-before", spike, 30 * time.Second, 100},
		{"spike-during", spike, 75 * time.Second, 300},
		{"spike-after", spike, 2 * time.Minute, 100},
		// explicit spike window [2m, 3m) adding 50.
		{"spike-set-before", spikeSet, time.Minute, 100},
		{"spike-set-during", spikeSet, 150 * time.Second, 150},
		{"spike-set-after", spikeSet, 3 * time.Minute, 100},
		// step defaults: to=2x at 1m.
		{"step-before", step, 59 * time.Second, 100},
		{"step-after", step, 61 * time.Second, 200},
		// ramp 100 -> 40 over 100s after a 10s delay.
		{"ramp-hold", ramp, 5 * time.Second, 100},
		{"ramp-mid", ramp, 60 * time.Second, 70},
		{"ramp-done", ramp, 3 * time.Minute, 40},
		// wave: mean at phase 0, mean+amp at period/4, floor at 0.
		{"wave-zero", wave, 0, 100},
		{"wave-crest", wave, 20 * time.Second, 160},
		{"wave-trough", wave, 60 * time.Second, 40},
	}
	for _, c := range cases {
		if got := c.d.schedule(c.at); got != c.want {
			t.Errorf("%s: schedule(%v) = %d, want %d", c.name, c.at, got, c.want)
		}
	}

	if steady := build(t, Steady, testEnv()); steady.schedule != nil || steady.arrive != nil {
		t.Error("steady profile grew a controller")
	}
	ol := build(t, OpenLoop, testEnv())
	if ol.arrive == nil || ol.schedule != nil {
		t.Error("open-loop profile misconfigured")
	}
}

func TestProfileValidation(t *testing.T) {
	bad := []struct {
		profile string
		set     variant.Settings
	}{
		{Steady, variant.Settings{"ebs": "0"}},
		{Step, variant.Settings{"ebs": "-3"}},
		{Step, variant.Settings{"to": "-1"}},
		{Ramp, variant.Settings{"over": "0s"}},
		{Ramp, variant.Settings{"ebs": "0"}},
		{Spike, variant.Settings{"width": "0s"}},
		{Spike, variant.Settings{"burst": "-5"}},
		{Spike, variant.Settings{"ebs": "0"}},
		{Wave, variant.Settings{"period": "0s"}},
		{Wave, variant.Settings{"ebs": "0"}},
		{Wave, variant.Settings{"amp": "-1"}},
		{OpenLoop, variant.Settings{"rate": "0"}},
		{OpenLoop, variant.Settings{"session": "0s"}},
		{OpenLoop, variant.Settings{"rate": "frog"}},
	}
	for _, c := range bad {
		p, _ := Lookup(c.profile)
		env := testEnv()
		env.Set = c.set
		if _, err := p.Build(env); err == nil {
			t.Errorf("%s with %v accepted", c.profile, c.set)
		}
	}
}

// TestScheduleFollowsInjectedManualClock is the regression test for the
// wallclock bug this PR fixed: driver.control paced population
// schedules with time.Now/time.Since, so under clock.Manual the fleet
// re-targeted on the wall timeline instead of the advanced one. With
// the injected clock, advancing a Manual clock past the step time must
// grow the fleet without any real seconds elapsing.
func TestScheduleFollowsInjectedManualClock(t *testing.T) {
	mc := clock.NewManual(time.Unix(100, 0))
	env := Env{
		// Nothing listens here: EBs fail their dial instantly and park
		// in think() — on the same manual clock.
		Addr:  "127.0.0.1:1",
		Scale: clock.RealTime,
		Seed:  1,
		Clock: mc,
		Set:   variant.Settings{"ebs": "2", "to": "5", "at": "3s"},
	}
	d := build(t, Step, env)
	d.Start()
	defer d.Stop()

	if got := d.gen.Active(); got != 2 {
		t.Fatalf("initial fleet = %d, want 2", got)
	}
	// Wait for the control loop's ticker to register, then advance
	// paper time second by second. The wall-paced pre-fix driver would
	// need 3+ real seconds to take the step; the injected clock takes
	// it as soon as the advanced timeline crosses at=3s.
	mc.BlockUntilWaiters(1)
	deadline := time.Now().Add(10 * time.Second)
	for d.gen.Active() != 5 {
		if time.Now().After(deadline) {
			t.Fatalf("fleet = %d after advancing past the step, want 5 (schedule not on the injected clock)", d.gen.Active())
		}
		mc.Advance(time.Second)
		time.Sleep(2 * time.Millisecond) // let the control loop drain the tick
	}
	if since := mc.Since(time.Unix(100, 0)); since < 3*time.Second {
		t.Fatalf("step taken after only %v of manual time", since)
	}
}

// startBookstore boots a staged server with a small TPC-W population.
func startBookstore(t *testing.T) (addr string, counts tpcw.Counts) {
	t.Helper()
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	if err := tpcw.CreateTables(db); err != nil {
		t.Fatal(err)
	}
	counts, err := tpcw.Populate(db, tpcw.PopulateConfig{Items: 150, Customers: 40, Orders: 40})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.New(core.Config{
		App: tpcw.NewApp(counts, nil), DB: db,
		HeaderWorkers: 2, StaticWorkers: 2, GeneralWorkers: 4, LengthyWorkers: 2, RenderWorkers: 2,
		MinReserve: 1,
		Scale:      clock.Timescale(1000),
	})
	if err != nil {
		t.Fatal(err)
	}
	l, addr, err := webtest.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(srv.Stop)
	return addr, counts
}

// TestSpikeDriverEndToEnd runs the spike profile against a live server
// and watches the client.active probe follow the burst window.
func TestSpikeDriverEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live-driver test skipped in -short mode")
	}
	addr, counts := startBookstore(t)
	p, _ := Lookup(Spike)
	d, err := p.Build(Env{
		Addr:      addr,
		Scale:     clock.Timescale(1000),
		Customers: counts.Customers,
		Items:     counts.Items,
		Seed:      5,
		Set: variant.Settings{
			"ebs": "3", "burst": "7", "at": "2s", "width": "1h",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	probes := d.Probes()
	if len(probes) != 4 {
		t.Fatalf("driver exports %d probes, want 4", len(probes))
	}
	gauges := map[string]func() float64{}
	for _, p := range probes {
		gauges[p.Name] = p.Gauge
	}
	d.Start()
	defer d.Stop()
	// The burst starts 2 paper-seconds in (2 ms wall) and never ends:
	// the fleet must reach base+burst.
	deadline := time.Now().Add(10 * time.Second)
	for gauges[ProbeActive]() != 10 {
		if time.Now().After(deadline) {
			t.Fatalf("active = %v, want 10 (burst never applied)", gauges[ProbeActive]())
		}
		time.Sleep(2 * time.Millisecond)
	}
	for d.Stats().TotalInteractions() < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d interactions (errors=%d)",
				d.Stats().TotalInteractions(), d.Stats().Errors())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if gauges[ProbeOffered]() == 0 {
		t.Error("offered-rate gauge never moved")
	}
	if gauges[ProbeWIRT]() < 0 {
		t.Error("negative WIRT")
	}
}

// TestOpenLoopDriverEndToEnd runs Poisson arrivals against a live
// server: sessions arrive, complete interactions, and retire.
func TestOpenLoopDriverEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live-driver test skipped in -short mode")
	}
	addr, counts := startBookstore(t)
	p, _ := Lookup(OpenLoop)
	d, err := p.Build(Env{
		Addr:      addr,
		Scale:     clock.Timescale(1000),
		Customers: counts.Customers,
		Items:     counts.Items,
		Seed:      6,
		Set:       variant.Settings{"rate": "2", "session": "5s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	deadline := time.Now().Add(10 * time.Second)
	for d.Stats().TotalInteractions() < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d interactions (errors=%d)",
				d.Stats().TotalInteractions(), d.Stats().Errors())
		}
		time.Sleep(2 * time.Millisecond)
	}
	d.Stop()
}
