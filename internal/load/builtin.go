package load

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"stagedweb/internal/variant"
	"stagedweb/internal/workload"
)

// Registered names of the built-in profiles.
const (
	// Steady is the paper's workload: a fixed closed-loop population.
	Steady = "steady"
	// Step jumps the population from ebs to a new level at a set time.
	Step = "step"
	// Ramp grows (or shrinks) the population linearly — the saturation
	// ramp as a single run instead of an -ebs-sweep matrix.
	Ramp = "ramp"
	// Spike is a flash crowd: a base population plus a burst of extra
	// EBs inside a window.
	Spike = "spike"
	// Wave is a compressed diurnal sinusoid around a mean population.
	Wave = "wave"
	// OpenLoop replaces the closed population with Poisson session
	// arrivals: offered load that does not slow down when the server
	// does.
	OpenLoop = "open-loop"
)

// defaultEBs is the base population when neither settings nor the
// harness's lowered defaults name one.
const defaultEBs = 100

func init() {
	Register(New(Steady, buildSteady))
	Register(New(Step, buildStep))
	Register(New(Ramp, buildRamp))
	Register(New(Spike, buildSpike))
	Register(New(Wave, buildWave))
	Register(New(OpenLoop, buildOpenLoop))
}

// baseGen builds the EB fleet every profile drives.
func baseGen(env Env, ebs int) *workload.Generator {
	return workload.New(workload.Config{
		Addr:             env.Addr,
		EBs:              ebs,
		Mix:              env.Mix,
		Scale:            env.Scale,
		Customers:        env.Customers,
		Items:            env.Items,
		FetchImages:      env.FetchImages,
		ThinkExponential: env.ThinkExponential,
		Seed:             env.Seed,
		Clock:            env.clk(),
	})
}

// buildSteady constructs the fixed closed-loop fleet (current paper
// behavior).
//
// Settings: ebs (population).
func buildSteady(env Env) (Driver, error) {
	d := variant.NewSettingsDecoder(env.Set, env.Defaults)
	ebs := d.Int("ebs", defaultEBs)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%s: %w", Steady, err)
	}
	if ebs <= 0 {
		return nil, fmt.Errorf("%s: ebs must be positive", Steady)
	}
	return newDriver(baseGen(env, ebs), env.Scale, env.clk()), nil
}

// buildStep constructs a population step.
//
// Settings: ebs (initial population), to (population after the step),
// at (paper time of the step since load start, default 1m).
func buildStep(env Env) (Driver, error) {
	d := variant.NewSettingsDecoder(env.Set, env.Defaults)
	ebs := d.Int("ebs", defaultEBs)
	to := d.Int("to", 2*ebs)
	at := d.Duration("at", time.Minute)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%s: %w", Step, err)
	}
	if ebs <= 0 || to < 0 {
		return nil, fmt.Errorf("%s: ebs must be positive and to non-negative", Step)
	}
	return Scheduled(env, ebs, func(t time.Duration) int {
		if t >= at {
			return to
		}
		return ebs
	})
}

// buildRamp constructs a linear population ramp.
//
// Settings: ebs (start population), to (end population, may be lower),
// over (ramp duration, default 2m), delay (hold at the start level
// first, default 0).
func buildRamp(env Env) (Driver, error) {
	d := variant.NewSettingsDecoder(env.Set, env.Defaults)
	from := d.Int("ebs", defaultEBs)
	to := d.Int("to", 2*from)
	over := d.Duration("over", 2*time.Minute)
	delay := d.Duration("delay", 0)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%s: %w", Ramp, err)
	}
	if from <= 0 || to < 0 {
		return nil, fmt.Errorf("%s: ebs must be positive and to non-negative", Ramp)
	}
	if over <= 0 {
		return nil, fmt.Errorf("%s: over must be positive", Ramp)
	}
	return Scheduled(env, from, func(t time.Duration) int {
		switch {
		case t <= delay:
			return from
		case t >= delay+over:
			return to
		default:
			frac := float64(t-delay) / float64(over)
			return from + int(math.Round(frac*float64(to-from)))
		}
	})
}

// buildSpike constructs a flash crowd.
//
// Settings: ebs (base population), burst (extra EBs during the burst,
// default 2×ebs), at (burst start in paper time since load start,
// default 1m), width (burst duration, default 30s).
func buildSpike(env Env) (Driver, error) {
	d := variant.NewSettingsDecoder(env.Set, env.Defaults)
	base := d.Int("ebs", defaultEBs)
	burst := d.Int("burst", 2*base)
	at := d.Duration("at", time.Minute)
	width := d.Duration("width", 30*time.Second)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%s: %w", Spike, err)
	}
	if base <= 0 {
		return nil, fmt.Errorf("%s: ebs must be positive", Spike)
	}
	if burst < 0 || width <= 0 {
		return nil, fmt.Errorf("%s: burst must be >= 0 and width positive", Spike)
	}
	return Scheduled(env, base, func(t time.Duration) int {
		if t >= at && t < at+width {
			return base + burst
		}
		return base
	})
}

// buildWave constructs a compressed diurnal sinusoid.
//
// Settings: ebs (mean population), amp (amplitude, default ebs/2),
// period (one full cycle in paper time, default 2m).
func buildWave(env Env) (Driver, error) {
	d := variant.NewSettingsDecoder(env.Set, env.Defaults)
	mean := d.Int("ebs", defaultEBs)
	amp := d.Int("amp", mean/2)
	period := d.Duration("period", 2*time.Minute)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%s: %w", Wave, err)
	}
	if mean <= 0 || amp < 0 {
		return nil, fmt.Errorf("%s: ebs must be positive and amp non-negative", Wave)
	}
	if period <= 0 {
		return nil, fmt.Errorf("%s: period must be positive", Wave)
	}
	return Scheduled(env, mean, func(t time.Duration) int {
		phase := 2 * math.Pi * float64(t) / float64(period)
		n := mean + int(math.Round(float64(amp)*math.Sin(phase)))
		if n < 0 {
			n = 0
		}
		return n
	})
}

// buildOpenLoop constructs Poisson session arrivals.
//
// Settings: rate (session arrivals per paper second), session (mean
// exponential session lifetime in paper time, default 1m).
func buildOpenLoop(env Env) (Driver, error) {
	d := variant.NewSettingsDecoder(env.Set, env.Defaults)
	rate := d.Float("rate", 2)
	session := d.Duration("session", time.Minute)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%s: %w", OpenLoop, err)
	}
	if rate <= 0 || session <= 0 {
		return nil, fmt.Errorf("%s: rate and session must be positive", OpenLoop)
	}
	// The fleet starts empty; every EB is an arriving session.
	drv := newDriver(baseGen(env, 0), env.Scale, env.clk())
	drv.arrive = &arrivals{
		rate:    rate,
		session: session,
		rng:     rand.New(rand.NewSource(env.Seed*31 + 17)),
	}
	return drv, nil
}
