package load

import (
	"math/rand"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/variant"
	"stagedweb/internal/workload"
)

// driver is the shared Driver implementation: an EB fleet plus an
// optional population schedule or open-loop arrival process.
type driver struct {
	gen   *workload.Generator
	scale clock.Timescale
	clk   clock.Clock

	// schedule maps paper time since Start to a target closed-loop
	// population; it is evaluated once per paper second. Nil leaves the
	// fleet fixed.
	schedule func(time.Duration) int
	// arrive, when set, is a Poisson session arrival process (schedule
	// must be nil).
	arrive *arrivals

	stop chan struct{}
	done chan struct{}
}

// newDriver wraps a generator with an inert controller; builders attach
// a schedule or arrival process before Start.
func newDriver(gen *workload.Generator, scale clock.Timescale, clk clock.Clock) *driver {
	return &driver{gen: gen, scale: scale, clk: clk, stop: make(chan struct{}), done: make(chan struct{})}
}

// Scheduled builds a Driver whose closed-loop population follows
// schedule — paper time since Start mapped to a target EB count,
// evaluated once per paper second. It is the building block the
// step/ramp/spike/wave built-ins compose, exported so custom profiles
// can too; pass a nil schedule for a fixed fleet.
func Scheduled(env Env, ebs int, schedule func(time.Duration) int) (Driver, error) {
	drv := newDriver(baseGen(env, ebs), env.Scale, env.clk())
	drv.schedule = schedule
	return drv, nil
}

func (d *driver) Start() {
	d.gen.Start()
	go d.control()
}

// control runs the population schedule or arrival process until Stop.
func (d *driver) control() {
	defer close(d.done)
	switch {
	case d.schedule != nil:
		// Pace on the injected clock: under clock.Manual the schedule
		// re-targets exactly when the test advances time, and under a
		// dilated experiment clock paper seconds stay paper seconds.
		// (This controller once used time.Now/time.Since here and
		// silently ran manual-clock fleets on the wall timeline —
		// the bug the wallclock analyzer now prevents.)
		tick := d.clk.NewTicker(d.scale.Wall(time.Second))
		defer tick.Stop()
		start := d.clk.Now()
		for {
			select {
			case <-d.stop:
				return
			case <-tick.C():
				d.gen.SetTarget(d.schedule(d.scale.Paper(d.clk.Since(start))))
			}
		}
	case d.arrive != nil:
		d.arrive.run(d.stop, d.gen, d.scale, d.clk)
	}
}

func (d *driver) Stop() {
	close(d.stop)
	<-d.done
	d.gen.Stop()
}

func (d *driver) Stats() *workload.Stats { return d.gen.Stats() }

func (d *driver) Probes() []variant.Probe {
	return []variant.Probe{
		{Name: ProbeActive, Gauge: func() float64 { return float64(d.gen.Active()) }},
		{Name: ProbeOffered, Gauge: d.gen.OfferedRateGauge()},
		{Name: ProbeErrors, Gauge: func() float64 { return float64(d.gen.Failed()) }},
		{Name: ProbeWIRT, Gauge: d.gen.WIRTGauge()},
	}
}

// arrivals is a Poisson session arrival process: sessions arrive at
// rate per paper second and live for an exponentially distributed
// paper-time lifetime with mean session — the open-loop workload class
// where offered load does not slow down when the server does.
type arrivals struct {
	rate    float64       // sessions per paper second
	session time.Duration // mean session lifetime, paper time
	rng     *rand.Rand
}

func (a *arrivals) run(stop chan struct{}, gen *workload.Generator, scale clock.Timescale, clk clock.Clock) {
	for {
		gap := time.Duration(a.rng.ExpFloat64() / a.rate * float64(time.Second))
		select {
		case <-stop:
			return
		case <-clk.After(scale.Wall(gap)):
		}
		gen.SpawnSession(time.Duration(a.rng.ExpFloat64() * float64(a.session)))
	}
}
