// Package load makes offered load a first-class value, mirroring
// internal/variant on the client side: a Profile is a named recipe that
// builds a running load Driver from an environment (server address,
// timescale, page mix, population bounds, generic settings), and a
// process-wide registry maps names to recipes.
//
// The experiment layers above — internal/harness, cmd/experiments —
// never switch on a workload shape. They look a profile name up, build
// it, start it, and sample its Probes into client.* time series exactly
// as they sample server variants' probes. The built-in profiles
// (steady, step, ramp, spike, wave, open-loop) are registered in
// builtin.go; a new scenario shape is one Register call and is
// immediately runnable, sweepable, and plottable everywhere.
package load

import (
	"fmt"
	"sort"
	"sync"

	"stagedweb/internal/clock"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/variant"
	"stagedweb/internal/workload"
)

// Probe names every Driver exports. The "client." prefix is reserved
// for driver probes, next to the server-side "queue."/"sched." families.
const (
	// ProbeActive is the live EB count (closed-loop fleet plus open-loop
	// sessions) — the instantaneous offered population.
	ProbeActive = "client.active"
	// ProbeOffered is the number of interactions begun since the
	// previous sample; at the harness's one-sample-per-paper-second
	// cadence it reads as offered load in interactions per paper second.
	ProbeOffered = "client.offered"
	// ProbeErrors is the cumulative failed-interaction count.
	ProbeErrors = "client.errors"
	// ProbeWIRT is the mean client-side web interaction response time,
	// in paper seconds, of interactions completed since the previous
	// sample (zero when none completed).
	ProbeWIRT = "client.wirt"
)

// Env is everything a Profile needs to build a Driver.
type Env struct {
	// Addr is the server address under load ("127.0.0.1:port").
	Addr string
	// Scale compresses paper-time schedules, think times, and arrival
	// gaps into wall time.
	Scale clock.Timescale
	// Mix is the page distribution; nil selects the browsing mix.
	Mix *tpcw.Mix
	// Customers and Items bound generated request parameters.
	Customers, Items int
	// FetchImages and ThinkExponential configure the EBs as in
	// workload.Config.
	FetchImages      bool
	ThinkExponential bool
	// Seed makes the fleet and arrival process deterministic.
	Seed int64
	// Clock paces population schedules, arrival gaps, think times, and
	// WIRT measurement. Nil means clock.Real — but the harness injects
	// its experiment clock, and tests inject clock.Manual to re-target
	// fleets deterministically; drivers must never fall back to the wall
	// clock on their own.
	Clock clock.Clock

	// Set holds explicit profile settings (CLI -load-set key=value,
	// harness.Config.LoadSet). A key the profile does not understand is
	// a build error — typos must not pass silently.
	Set variant.Settings
	// Defaults holds advisory settings (the harness lowers the
	// deprecated Config.EBs into "ebs" here). A profile applies the keys
	// it understands and ignores the rest.
	Defaults variant.Settings
}

// clk returns the environment's clock, defaulting to the runtime clock.
func (e Env) clk() clock.Clock {
	if e.Clock != nil {
		return e.Clock
	}
	return clock.Real{}
}

// Driver is a built, runnable load shape.
type Driver interface {
	// Start launches the EB fleet and any population controller or
	// arrival process. It does not block.
	Start()
	// Stop halts the controller and every EB, waiting for in-flight
	// interactions. Call once, after Start.
	Stop()
	// Stats exposes the client-side WIRT measurements, gated to the
	// measurement window by the harness.
	Stats() *workload.Stats
	// Probes lists the client.* gauges this driver exports.
	Probes() []variant.Probe
}

// Profile is a named load recipe.
type Profile interface {
	// Name is the registry key ("steady", "spike", ...).
	Name() string
	// Build constructs a runnable Driver from the environment.
	Build(Env) (Driver, error)
}

// funcProfile adapts a build function into a Profile.
type funcProfile struct {
	name  string
	build func(Env) (Driver, error)
}

func (p funcProfile) Name() string                  { return p.name }
func (p funcProfile) Build(env Env) (Driver, error) { return p.build(env) }

// New wraps a name and a build function as a Profile.
func New(name string, build func(Env) (Driver, error)) Profile {
	return funcProfile{name: name, build: build}
}

var (
	regMu    sync.RWMutex
	registry = map[string]Profile{}
)

// Register adds a profile to the process-wide registry. It panics on an
// empty or duplicate name: registration happens at init time, and a
// collision is a programming error.
func Register(p Profile) {
	name := p.Name()
	if name == "" {
		panic("load: empty profile name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("load: duplicate registration of %q", name))
	}
	registry[name] = p
}

// Lookup finds a registered profile by name.
func Lookup(name string) (Profile, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Names lists the registered profile names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
