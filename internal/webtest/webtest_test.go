package webtest

import (
	"bufio"
	"strings"
	"testing"

	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
)

func TestAppImplementsServerApp(t *testing.T) {
	app := NewApp().
		AddTemplate("t.html", "{{ x }}").
		AddStatic("/a.css", []byte("x"), "text/css").
		AddPage("/p", func(r *server.Request) (*server.Result, error) {
			return &server.Result{Body: "ok"}, nil
		})
	if _, ok := app.Handler("/p"); !ok {
		t.Fatal("handler missing")
	}
	if _, ok := app.Handler("/nope"); ok {
		t.Fatal("phantom handler")
	}
	body, ct, ok := app.Static("/a.css")
	if !ok || ct != "text/css" || string(body) != "x" {
		t.Fatalf("static = %q %q %v", body, ct, ok)
	}
	out, err := app.Templates().Render("t.html", map[string]any{"x": 1})
	if err != nil || out != "1" {
		t.Fatalf("render = %q, %v", out, err)
	}
}

func TestReadResponse(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 5\r\n\r\nhello"
	resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "hello" {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Header.Get("Content-Type") != "text/plain" {
		t.Fatalf("header = %v", resp.Header)
	}
}

func TestReadResponseErrors(t *testing.T) {
	for _, raw := range []string{
		"",
		"NOTHTTP 200 OK\r\n\r\n",
		"HTTP/1.1 abc OK\r\n\r\n",
		"HTTP/1.1 200 OK\r\n\r\n", // no Content-Length
		"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhi",  // truncated body
		"HTTP/1.1 200 OK\r\nContent-Length: -1\r\n\r\n",    // negative
		"HTTP/1.1 200 OK\r\nContent-Length: nan\r\n\r\nhi", // non-numeric
	} {
		if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err == nil {
			t.Errorf("ReadResponse(%q) succeeded", raw)
		}
	}
}

func TestEndToEndAgainstBaseline(t *testing.T) {
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	db.MustCreateTable(sqldb.Schema{
		Table:      "t",
		Columns:    []sqldb.Column{{Name: "id", Type: sqldb.Int}},
		PrimaryKey: "id",
	})
	app := NewApp().AddPage("/ping", func(r *server.Request) (*server.Result, error) {
		return &server.Result{Body: "pong"}, nil
	})
	srv, err := server.NewBaseline(server.BaselineConfig{App: app, DB: db, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, addr, err := Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Stop()

	resp, err := Get(addr, "/ping")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "pong" {
		t.Fatalf("resp = %+v", resp)
	}

	// Keep-alive client path.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		resp, err := c.Do("/ping", true)
		if err != nil || resp.Status != 200 {
			t.Fatalf("keep-alive %d: %+v %v", i, resp, err)
		}
	}
}
