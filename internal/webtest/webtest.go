// Package webtest provides a minimal HTTP client and a configurable
// in-memory application used by server tests, examples, and the workload
// generator's own tests.
//
// The client is deliberately independent of net/http so that tests
// exercise the repository's wire implementation end to end.
package webtest

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/httpwire"
	"stagedweb/internal/server"
	"stagedweb/internal/template"
)

// App is a small server.App for tests and examples.
type App struct {
	set      *template.Set
	handlers map[string]server.HandlerFunc
	statics  map[string]staticFile
}

type staticFile struct {
	body []byte
	ct   string
}

var _ server.App = (*App)(nil)

// NewApp returns an empty application.
func NewApp() *App {
	return &App{
		set:      template.NewSet(),
		handlers: map[string]server.HandlerFunc{},
		statics:  map[string]staticFile{},
	}
}

// AddPage registers a dynamic page handler.
func (a *App) AddPage(path string, h server.HandlerFunc) *App {
	a.handlers[path] = h
	return a
}

// AddTemplate registers a template source.
func (a *App) AddTemplate(name, src string) *App {
	a.set.Add(name, src)
	return a
}

// AddStatic registers a static asset.
func (a *App) AddStatic(path string, body []byte, contentType string) *App {
	a.statics[path] = staticFile{body: body, ct: contentType}
	return a
}

// Handler implements server.App.
func (a *App) Handler(path string) (server.HandlerFunc, bool) {
	h, ok := a.handlers[path]
	return h, ok
}

// Static implements server.App.
func (a *App) Static(path string) ([]byte, string, bool) {
	f, ok := a.statics[path]
	return f.body, f.ct, ok
}

// Templates implements server.App.
func (a *App) Templates() *template.Set { return a.set }

// Response is a parsed HTTP response.
type Response struct {
	Status int
	Header httpwire.Header
	Body   []byte
}

// Client is a single-connection HTTP client (optionally keep-alive).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
}

// Dial connects to addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, br: bufio.NewReader(conn)}, nil
}

// Close closes the underlying connection.
func (c *Client) Close() { _ = c.conn.Close() }

// Do sends one GET request and reads the full response. keepAlive
// controls the Connection header.
func (c *Client) Do(path string, keepAlive bool) (*Response, error) {
	connHdr := "close"
	if keepAlive {
		connHdr = "keep-alive"
	}
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: test\r\nUser-Agent: webtest\r\nConnection: %s\r\n\r\n", path, connHdr)
	if _, err := io.WriteString(c.conn, req); err != nil {
		return nil, err
	}
	return ReadResponse(c.br)
}

// Get performs a one-shot GET with Connection: close on a fresh
// connection.
func Get(addr, path string) (*Response, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Do(path, false)
}

// ReadResponse parses an HTTP/1.1 response with a Content-Length body.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	statusLine, err := br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	statusLine = strings.TrimRight(statusLine, "\r\n")
	parts := strings.SplitN(statusLine, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, fmt.Errorf("webtest: malformed status line %q", statusLine)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("webtest: bad status in %q", statusLine)
	}
	hdr, err := httpwire.ReadHeaders(br)
	if err != nil {
		return nil, err
	}
	resp := &Response{Status: status, Header: hdr}
	cl := hdr.Get("Content-Length")
	if cl == "" {
		return nil, fmt.Errorf("webtest: response without Content-Length")
	}
	n, err := strconv.Atoi(cl)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("webtest: bad Content-Length %q", cl)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	resp.Body = body
	return resp, nil
}

// Listen opens a loopback listener on an ephemeral port.
func Listen() (net.Listener, string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return l, l.Addr().String(), nil
}

// WaitUntil polls cond every millisecond until it holds or timeout
// passes, reporting whether it held — the shared wait primitive for
// tests observing asynchronous server state. It waits on the wall
// clock; tests pacing a clock.Manual timeline use WaitUntilOn.
func WaitUntil(timeout time.Duration, cond func() bool) bool {
	return WaitUntilOn(clock.Real{}, timeout, cond)
}

// WaitUntilOn is WaitUntil on an injected clock: the deadline and the
// poll cadence both follow c, so under clock.Manual the wait consumes
// exactly the advanced time and under a dilated clock it stretches with
// the run. Helpers must not hand-roll time.Now deadline loops — that
// re-anchors the wait to the wall and is exactly what the wallclock
// analyzer rejects.
func WaitUntilOn(c clock.Clock, timeout time.Duration, cond func() bool) bool {
	deadline := c.Now().Add(timeout)
	for !cond() {
		if c.Now().After(deadline) {
			return false
		}
		c.Sleep(time.Millisecond)
	}
	return true
}
