package core_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/core"
	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/webtest"
)

// testEnv is a running staged server plus its database.
type testEnv struct {
	srv  *core.Server
	addr string
	db   *sqldb.DB
}

func startStaged(t *testing.T, app *webtest.App, mutate func(*core.Config)) *testEnv {
	t.Helper()
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	db.MustCreateTable(sqldb.Schema{
		Table:      "kv",
		Columns:    []sqldb.Column{{Name: "id", Type: sqldb.Int}, {Name: "v", Type: sqldb.String}},
		PrimaryKey: "id",
	})
	seed := db.Connect()
	if _, err := seed.Exec("INSERT INTO kv (id, v) VALUES (1, 'hello-from-db')"); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	cfg := core.Config{
		App:            app,
		DB:             db,
		HeaderWorkers:  2,
		StaticWorkers:  2,
		GeneralWorkers: 4,
		LengthyWorkers: 1,
		RenderWorkers:  2,
		MinReserve:     1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, addr, err := webtest.Listen()
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	t.Cleanup(func() {
		s.Stop()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return &testEnv{srv: s, addr: addr, db: db}
}

func stagedApp() *webtest.App {
	app := webtest.NewApp()
	app.AddTemplate("page.html", "<html><body>{{ msg }}</body></html>")
	app.AddStatic("/style.css", []byte("body { color: red }"), "text/css")
	app.AddPage("/hello", func(r *server.Request) (*server.Result, error) {
		rs, err := r.DB.Query("SELECT v FROM kv WHERE id = ?", 1)
		if err != nil {
			return nil, err
		}
		// The paper's deferred style: return (template name, data).
		return &server.Result{Template: "page.html", Data: map[string]any{"msg": rs.Str(0, "v")}}, nil
	})
	app.AddPage("/legacy", func(r *server.Request) (*server.Result, error) {
		// Backward compatibility: an unmodified handler returning an
		// already-rendered string (Section 3.1).
		return &server.Result{Body: "<html>legacy prerendered</html>"}, nil
	})
	app.AddPage("/boom", func(r *server.Request) (*server.Result, error) {
		return nil, fmt.Errorf("nope")
	})
	return app
}

func TestStagedDeferredRendering(t *testing.T) {
	env := startStaged(t, stagedApp(), nil)
	resp, err := webtest.Get(env.addr, "/hello")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("status = %d", resp.Status)
	}
	if want := "<html><body>hello-from-db</body></html>"; string(resp.Body) != want {
		t.Fatalf("body = %q", resp.Body)
	}
	if got := resp.Header.Get("Content-Length"); got != fmt.Sprint(len(resp.Body)) {
		t.Fatalf("Content-Length %q vs body %d", got, len(resp.Body))
	}
}

func TestStagedBackwardCompatiblePrerendered(t *testing.T) {
	env := startStaged(t, stagedApp(), nil)
	resp, err := webtest.Get(env.addr, "/legacy")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "<html>legacy prerendered</html>" {
		t.Fatalf("status=%d body=%q", resp.Status, resp.Body)
	}
}

func TestStagedStatic(t *testing.T) {
	env := startStaged(t, stagedApp(), nil)
	resp, err := webtest.Get(env.addr, "/style.css")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || resp.Header.Get("Content-Type") != "text/css" {
		t.Fatalf("status=%d ct=%q", resp.Status, resp.Header.Get("Content-Type"))
	}
}

func TestStagedNotFoundAndError(t *testing.T) {
	env := startStaged(t, stagedApp(), nil)
	if resp, err := webtest.Get(env.addr, "/nosuch"); err != nil || resp.Status != 404 {
		t.Fatalf("dynamic 404: %v %v", resp, err)
	}
	if resp, err := webtest.Get(env.addr, "/missing.png"); err != nil || resp.Status != 404 {
		t.Fatalf("static 404: %v %v", resp, err)
	}
	if resp, err := webtest.Get(env.addr, "/boom"); err != nil || resp.Status != 500 {
		t.Fatalf("500: %v %v", resp, err)
	}
}

func TestStagedKeepAliveRecycling(t *testing.T) {
	env := startStaged(t, stagedApp(), nil)
	c, err := webtest.Dial(env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		resp, err := c.Do("/hello", true)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Status != 200 {
			t.Fatalf("request %d: status %d", i, resp.Status)
		}
	}
	// Mixed: static on the same connection.
	resp, err := c.Do("/style.css", true)
	if err != nil || resp.Status != 200 {
		t.Fatalf("static on keep-alive: %v %v", resp, err)
	}
}

func TestStagedClassifierLearnsLengthy(t *testing.T) {
	app := stagedApp()
	app.AddPage("/slow", func(r *server.Request) (*server.Result, error) {
		time.Sleep(30 * time.Millisecond) // 3s of paper time at scale 100
		return &server.Result{Body: "slow done"}, nil
	})
	env := startStaged(t, app, func(cfg *core.Config) {
		cfg.Scale = clock.Timescale(100) // 30ms wall = 3s paper > 2s cutoff
	})
	if _, err := webtest.Get(env.addr, "/slow"); err != nil {
		t.Fatal(err)
	}
	cls := env.srv.Classifier()
	if !cls.Lengthy("/slow") {
		t.Fatalf("mean %v not classified lengthy", cls.Mean("/slow"))
	}
	if cls.Lengthy("/hello") {
		t.Fatal("/hello misclassified lengthy")
	}
}

// TestStagedQuickUnaffectedByLengthyFlood is the paper's headline
// behaviour in miniature: once the server learns a page is lengthy, a
// flood of lengthy requests saturates the lengthy pool while quick
// requests keep being served promptly by reserved general workers.
func TestStagedQuickUnaffectedByLengthyFlood(t *testing.T) {
	app := stagedApp()
	var slowCalls atomic.Int64
	app.AddPage("/slow", func(r *server.Request) (*server.Result, error) {
		slowCalls.Add(1)
		time.Sleep(100 * time.Millisecond)
		return &server.Result{Body: "slow done"}, nil
	})
	env := startStaged(t, app, func(cfg *core.Config) {
		cfg.Scale = clock.Timescale(100)
		cfg.GeneralWorkers = 4
		cfg.LengthyWorkers = 1
		cfg.MinReserve = 4 // reserve the whole general pool for quick work
	})

	// Teach the classifier that /slow is lengthy.
	if _, err := webtest.Get(env.addr, "/slow"); err != nil {
		t.Fatal(err)
	}

	// Flood with lengthy requests (they overflow the 1-worker lengthy
	// pool and queue there, not in the general pool).
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = webtest.Get(env.addr, "/slow")
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the flood queue up

	// Quick requests must still complete fast.
	start := time.Now()
	resp, err := webtest.Get(env.addr, "/hello")
	quickLatency := time.Since(start)
	if err != nil || resp.Status != 200 {
		t.Fatalf("quick request failed during flood: %v %v", resp, err)
	}
	if quickLatency > 50*time.Millisecond {
		t.Fatalf("quick latency %v during lengthy flood; reservation failed", quickLatency)
	}
	wg.Wait()
}

func TestStagedQueueLensAndIntrospection(t *testing.T) {
	env := startStaged(t, stagedApp(), nil)
	lens := env.srv.QueueLens()
	for _, k := range []string{"header", "static", "general", "lengthy", "render"} {
		if _, ok := lens[k]; !ok {
			t.Fatalf("QueueLens missing %q: %v", k, lens)
		}
	}
	if env.srv.GeneralQueueLen() != 0 || env.srv.LengthyQueueLen() != 0 {
		t.Fatal("queues should be empty at idle")
	}
	if env.srv.Spare() != 4 {
		t.Fatalf("Spare = %d, want 4", env.srv.Spare())
	}
	if env.srv.Reserve() != 1 {
		t.Fatalf("Reserve = %d, want min 1", env.srv.Reserve())
	}
	if s := env.srv.String(); s == "" {
		t.Fatal("String empty")
	}
}

func TestStagedCompletionEvents(t *testing.T) {
	var mu sync.Mutex
	var events []server.CompletionEvent
	app := stagedApp()
	env := startStaged(t, app, func(cfg *core.Config) {
		cfg.OnComplete = func(ev server.CompletionEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}
	})
	if _, err := webtest.Get(env.addr, "/hello"); err != nil {
		t.Fatal(err)
	}
	if _, err := webtest.Get(env.addr, "/style.css"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(events)
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("events = %d, want 2", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	classes := map[server.Class]bool{}
	for _, ev := range events {
		classes[ev.Class] = true
		if ev.ServerTime < 0 {
			t.Fatalf("negative server time: %+v", ev)
		}
	}
	if !classes[server.ClassStatic] || !classes[server.ClassQuick] {
		t.Fatalf("classes seen: %v", classes)
	}
}

func TestStagedManyConcurrentClients(t *testing.T) {
	env := startStaged(t, stagedApp(), func(cfg *core.Config) {
		cfg.GeneralWorkers = 8
		cfg.RenderWorkers = 4
	})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			path := "/hello"
			if n%3 == 0 {
				path = "/style.css"
			}
			resp, err := webtest.Get(env.addr, path)
			if err != nil {
				errs <- err
				return
			}
			if resp.Status != 200 {
				errs <- fmt.Errorf("GET %s: status %d", path, resp.Status)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if env.srv.Served() < 64 {
		t.Fatalf("Served = %d, want >= 64", env.srv.Served())
	}
}

func TestStagedConfigValidation(t *testing.T) {
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	if _, err := core.New(core.Config{DB: db}); err == nil {
		t.Fatal("nil App accepted")
	}
	if _, err := core.New(core.Config{App: stagedApp()}); err == nil {
		t.Fatal("nil DB accepted")
	}
}

// TestStagedGracefulShutdownDrains stops the pipeline with requests in
// flight and asserts — via the stage graph's stats and the database's
// open-connection gauge — that every stage drained in flow order, no
// workers stayed busy, and the dynamic pools released their connections.
func TestStagedGracefulShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	app := stagedApp()
	app.AddPage("/blocked", func(r *server.Request) (*server.Result, error) {
		<-release
		return &server.Result{Template: "page.html", Data: map[string]any{"msg": "late"}}, nil
	})
	env := startStaged(t, app, func(cfg *core.Config) {
		cfg.GeneralWorkers = 3
		cfg.LengthyWorkers = 1
		cfg.RenderWorkers = 2
	})

	const inFlight = 6 // 3 occupy general workers, the rest queue
	results := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		go func() {
			resp, err := webtest.Get(env.addr, "/blocked")
			if err == nil && resp.Status != 200 {
				err = fmt.Errorf("status %d", resp.Status)
			}
			results <- err
		}()
	}
	if !webtest.WaitUntil(5*time.Second, func() bool {
		g, _ := env.srv.Graph().Stage("general")
		st := g.Stats()
		return st.Busy == 3 && st.Depth >= 1
	}) {
		t.Fatal("general stage never saturated")
	}

	// Release the handlers while Stop is draining the pipeline: the
	// queued requests must still flow general -> render -> client.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	env.srv.Stop()

	for i := 0; i < inFlight; i++ {
		if err := <-results; err != nil {
			t.Errorf("in-flight request dropped during shutdown: %v", err)
		}
	}
	for _, st := range env.srv.Graph().Stats() {
		if !st.Closed || st.Busy != 0 || st.Depth != 0 {
			t.Errorf("stage %s not drained: %+v", st.Name, st)
		}
	}
	if n := env.db.OpenConns(); n != 0 {
		t.Errorf("database connections leaked: %d still open", n)
	}
	if got := env.srv.Served(); got < inFlight {
		t.Errorf("Served = %d, want >= %d", got, inFlight)
	}
	// Stop is idempotent.
	env.srv.Stop()
}
