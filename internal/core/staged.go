// Package core implements the paper's primary contribution: the modified
// multithreaded web server whose requests are served by different threads
// in multiple thread pools.
//
// The topology is exactly Figure 5 of the paper — a single listener and
// five pools:
//
//	listener -> header parsing -> static requests
//	                           -> general dynamic requests  -> template
//	                           -> lengthy dynamic requests  ->  rendering
//
// It is expressed as a stage.Graph over the generic stage runtime; the
// connection mechanics (accept loop, buffered conns, two-phase parsing,
// replies, cost charging) come from the shared server.Transport. Database
// connections are bound only to the dynamic-request workers, so they are
// never idle while templates render or static files are served. Dynamic
// requests are classified quick/lengthy by tracked mean data-generation
// time (sched.Classifier, 2 s cutoff), dispatched per Table 1, and
// protected from head-of-line blocking by the t_reserve feedback
// controller (sched.ReserveController, updated once per paper second).
package core

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/dbtier"
	"stagedweb/internal/httpwire"
	"stagedweb/internal/metrics"
	"stagedweb/internal/sched"
	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/stage"
)

// Stage names, which key QueueLens and Graph lookups.
const (
	StageHeader  = "header"
	StageStatic  = "static"
	StageGeneral = "general"
	StageLengthy = "lengthy"
	StageRender  = "render"
)

// Config configures the staged server. Topology — pool sizes, queue
// bounds, the classifier cutoff, and the reserve policy — is pure
// configuration: harness variants (pool-size sweeps, the no-reserve
// ablation) need no new server code.
type Config struct {
	// App is the application to serve.
	App server.App
	// DB is the primary database. The server fronts it with a dbtier
	// (Replicas backends, DBConns pooled connections per backend), and
	// only dynamic workers execute statements through it — rendering and
	// static pools never touch a connection, the paper's point.
	DB *sqldb.DB
	// Replicas is the total number of database backends (primary
	// included); values below 1 mean 1 — no replication.
	Replicas int
	// DBConns is the connection pool size per backend. It defaults to
	// GeneralWorkers + LengthyWorkers, the dynamic-worker budget, so by
	// default acquisition never waits.
	DBConns int
	// MVCC switches the primary's storage engine to snapshot reads plus
	// optimistic first-writer-wins writes. False keeps per-table
	// reader-writer locks, the paper's concurrency model.
	MVCC bool
	// ReplAsync ships the replication log to replicas asynchronously:
	// writers stop waiting for replica apply and replicas serve
	// bounded-stale reads. False keeps the synchronous contract — every
	// replica has applied a write before Exec returns.
	ReplAsync bool

	// Pool sizes. The paper sizes the general pool at four times the
	// lengthy pool. Zero values take the defaults below.
	HeaderWorkers  int // default 8
	StaticWorkers  int // default 16
	GeneralWorkers int // default 64
	LengthyWorkers int // default 16
	RenderWorkers  int // default 16

	// QueueCap bounds every stage queue. Defaults to 4096.
	QueueCap int

	// Cutoff is the quick/lengthy boundary in paper time (default 2 s,
	// the paper's value).
	Cutoff time.Duration
	// MinReserve is the configured minimum t_reserve (default 20, the
	// value used in the paper's Table 2).
	MinReserve int
	// NoReserve disables the t_reserve feedback controller entirely (the
	// ablation variant): t_reserve is pinned to zero and lengthy requests
	// enter the general pool whenever it has any spare worker, so quick
	// pages lose their protection.
	NoReserve bool
	// ControllerInterval is the t_reserve update period in paper time
	// (default 1 s, per the paper).
	ControllerInterval time.Duration

	// Clock and Scale drive the controller loop and convert measured
	// wall durations into paper time for classification.
	Clock clock.Clock
	Scale clock.Timescale

	// IdleTimeout bounds how long a header-parsing worker waits for the
	// next request line on a connection (wall time), like CherryPy's
	// socket timeout. Defaults to 10 s.
	IdleTimeout time.Duration

	// Cost models render/static worker time (paper time); zero charges
	// nothing. In this server the costs land on the rendering and static
	// pools, which hold no database connections — the paper's point.
	Cost server.WorkCost

	// OnComplete, when set, receives a CompletionEvent per request.
	OnComplete func(server.CompletionEvent)
}

func (c *Config) fillDefaults() {
	if c.HeaderWorkers <= 0 {
		c.HeaderWorkers = 8
	}
	if c.StaticWorkers <= 0 {
		c.StaticWorkers = 16
	}
	if c.GeneralWorkers <= 0 {
		c.GeneralWorkers = 64
	}
	if c.LengthyWorkers <= 0 {
		c.LengthyWorkers = 16
	}
	if c.RenderWorkers <= 0 {
		c.RenderWorkers = 16
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
	if c.Cutoff <= 0 {
		c.Cutoff = sched.DefaultCutoff
	}
	if c.MinReserve <= 0 {
		c.MinReserve = 20
	}
	if c.ControllerInterval <= 0 {
		c.ControllerInterval = time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Second
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.Scale == 0 {
		c.Scale = clock.RealTime
	}
}

// staticTask is a request classified static by a header-parsing worker.
type staticTask struct {
	c    *server.Conn
	line httpwire.RequestLine
}

// dynTask is a fully header-parsed dynamic request.
type dynTask struct {
	c   *server.Conn
	req *httpwire.Request
	key string
}

// renderTask is an unrendered template plus its data, queued for the
// rendering pool.
type renderTask struct {
	c      *server.Conn
	req    *httpwire.Request
	key    string
	result *server.Result
}

// Server is the staged (modified) web server.
type Server struct {
	cfg Config
	tr  *server.Transport

	graph   *stage.Graph
	header  *stage.Stage[*server.Conn]
	static  *stage.Stage[*staticTask]
	general *stage.Stage[*dynTask]
	lengthy *stage.Stage[*dynTask]
	render  *stage.Stage[*renderTask]

	dispatcher *sched.Dispatcher
	controller *sched.Controller
	tier       *dbtier.Tier

	// Per-target dispatch decision counts, fed by the dispatcher hook.
	dispatchedGeneral metrics.Counter
	dispatchedLengthy metrics.Counter

	mu       sync.Mutex
	listener net.Listener
	stopped  bool
	stopOnce sync.Once
	// parked tracks keep-alive connections awaiting their next request;
	// Stop aborts them so shutdown never waits out the idle timeout.
	parked map[*server.Conn]struct{}
	parkWG sync.WaitGroup
}

// New validates the configuration and builds the staged server.
func New(cfg Config) (*Server, error) {
	if cfg.App == nil {
		return nil, errors.New("core: nil App")
	}
	if cfg.DB == nil {
		return nil, errors.New("core: nil DB")
	}
	cfg.fillDefaults()
	s := &Server{cfg: cfg, parked: make(map[*server.Conn]struct{})}
	s.tr = server.NewTransport(server.TransportConfig{
		IdleTimeout: cfg.IdleTimeout,
		Clock:       cfg.Clock,
		Scale:       cfg.Scale,
		Cost:        cfg.Cost,
		OnComplete:  cfg.OnComplete,
	})

	cls := sched.NewClassifier(cfg.Cutoff)
	var rc *sched.ReserveController
	if cfg.NoReserve {
		// t_reserve pinned at zero: Table 1 degenerates to "lengthy goes
		// to the general pool whenever it has a spare worker".
		rc = sched.NewReserveController(0)
	} else {
		rc = sched.NewReserveController(cfg.MinReserve)
		// Keep the controller in its stable region: reserving more than
		// 3/4 of the general pool would let the grow rule run away (see
		// sched.NewReserveController).
		if maxR := cfg.GeneralWorkers * 3 / 4; maxR > cfg.MinReserve {
			rc.SetMax(maxR)
		}
	}

	s.header = stage.New(stage.Config[*server.Conn]{
		Name: StageHeader, Workers: cfg.HeaderWorkers, QueueCap: cfg.QueueCap,
		Work: s.headerWork,
	})
	s.static = stage.New(stage.Config[*staticTask]{
		Name: StageStatic, Workers: cfg.StaticWorkers, QueueCap: cfg.QueueCap,
		Work: s.staticWork,
	})

	// The database tier serves dynamic workers only: by default one
	// backend with one pooled connection per dynamic worker, so their
	// statements never wait; with replicas, reads route round-robin and
	// writes fan out synchronously.
	if cfg.DBConns <= 0 {
		cfg.DBConns = cfg.GeneralWorkers + cfg.LengthyWorkers
	}
	if cfg.MVCC {
		cfg.DB.SetMVCC(true)
	}
	s.tier = dbtier.New(cfg.DB, dbtier.Options{
		Replicas: cfg.Replicas,
		Conns:    cfg.DBConns,
		Clock:    cfg.Clock,
		Scale:    cfg.Scale,
		Async:    cfg.ReplAsync,
	})
	dbc := s.tier.Conn()
	s.general = stage.New(stage.Config[*dynTask]{
		Name: StageGeneral, Workers: cfg.GeneralWorkers, QueueCap: cfg.QueueCap,
		Work: func(t *dynTask) { s.dynamicWork(t, dbc) },
	})
	s.lengthy = stage.New(stage.Config[*dynTask]{
		Name: StageLengthy, Workers: cfg.LengthyWorkers, QueueCap: cfg.QueueCap,
		Work: func(t *dynTask) { s.dynamicWork(t, dbc) },
	})
	s.render = stage.New(stage.Config[*renderTask]{
		Name: StageRender, Workers: cfg.RenderWorkers, QueueCap: cfg.QueueCap,
		Work: s.renderWork,
	})

	// Stop drains in flow order: header first, render last.
	s.graph = stage.NewGraph().Add(s.header, s.static, s.general, s.lengthy, s.render)

	// t_spare is the general pool's live spare-worker count.
	s.dispatcher = sched.NewDispatcher(cls, rc, s.general.Spare)
	s.dispatcher.SetHook(func(_ string, target sched.Target) {
		if target == sched.Lengthy {
			s.dispatchedLengthy.Inc()
		} else {
			s.dispatchedGeneral.Inc()
		}
	})
	return s, nil
}

// Serve accepts connections on l until Stop. It blocks; run it in a
// goroutine. The error is nil after a clean Stop.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		_ = l.Close()
		return nil
	}
	s.listener = l
	s.graph.Start()
	if !s.cfg.NoReserve {
		s.controller = sched.StartController(
			s.cfg.Clock,
			s.cfg.Scale.Wall(s.cfg.ControllerInterval),
			s.dispatcher.ReserveController(),
			s.general.Spare,
		)
	}
	s.mu.Unlock()
	return s.tr.Accept(l, func(c *server.Conn) error { return s.header.Submit(c) })
}

// Stop shuts the pipeline down in flow order, draining each stage. It is
// safe to call before, during, or after Serve, and is idempotent. Parked
// keep-alive connections are aborted rather than left to age out their
// idle timeout, so shutdown is prompt and leaves no park goroutines
// behind.
func (s *Server) Stop() {
	s.mu.Lock()
	s.stopped = true
	l := s.listener
	ctl := s.controller
	s.controller = nil
	for c := range s.parked {
		c.Abort()
	}
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	if ctl != nil {
		ctl.Stop()
	}
	s.stopOnce.Do(func() {
		s.graph.Stop()
		s.parkWG.Wait()
		s.tier.Close()
	})
}

// ---- pipeline stages ----

// headerWork is the header-parsing pool: phase-one parse, static/dynamic
// classification, and (for dynamics) the full header+query parse plus the
// Table 1 dispatch decision.
func (s *Server) headerWork(c *server.Conn) {
	line, err := c.ReadRequestLine()
	if err != nil {
		// EOF between keep-alive requests is normal connection teardown.
		c.Close()
		return
	}
	if line.IsStatic() {
		// Static requests carry their unparsed header tail to the static
		// pool; "this is not an issue for static requests, so we let the
		// threads which actually serve those static requests parse their
		// headers" (Section 3.2).
		if s.static.Submit(&staticTask{c: c, line: line}) != nil {
			c.Close()
		}
		return
	}
	// Dynamic: parse everything here so a thread with an open database
	// connection never spends time on anything but generating data.
	req, err := c.FinishRequest(line)
	if err != nil {
		_ = c.WriteError(httpwire.StatusBadRequest, "bad request")
		c.Close()
		return
	}
	task := &dynTask{c: c, req: req, key: line.Path}
	target := s.general
	if s.dispatcher.Choose(task.key) == sched.Lengthy {
		target = s.lengthy
	}
	if target.Submit(task) != nil {
		c.Close()
	}
}

// staticWork parses the header tail and serves the file.
func (s *Server) staticWork(t *staticTask) {
	hdr, err := t.c.ReadHeaders()
	if err != nil {
		t.c.Close()
		return
	}
	req := &httpwire.Request{Line: t.line, Header: hdr}
	s.recycle(t.c, s.tr.ServeStatic(t.c, s.cfg.App, t.line.Path, req.KeepAlive()))
}

// dynamicWork runs the page handler on a worker whose statements go
// through the database tier, measures data-generation time on the
// injected clock, and hands deferred results to the rendering pool.
func (s *Server) dynamicWork(t *dynTask, dbc server.DBConn) {
	handler, ok := s.cfg.App.Handler(t.req.Line.Path)
	if !ok {
		s.recycle(t.c, s.tr.DirectReply(t.c, t.key, s.classOf(t.key),
			httpwire.StatusNotFound, []byte("not found"), "text/plain; charset=utf-8", false))
		return
	}
	start := s.cfg.Clock.Now()
	res, err := handler(&server.Request{
		Path:   t.req.Line.Path,
		Query:  t.req.Query,
		Header: t.req.Header,
		DB:     dbc,
	})
	if err != nil {
		s.recycle(t.c, s.tr.DirectReply(t.c, t.key, s.classOf(t.key),
			httpwire.StatusInternalServerError, []byte("internal error"), "text/plain; charset=utf-8", false))
		return
	}

	if res.Deferred() {
		// The paper's measurement: "from when the request is acquired
		// through when its unrendered template is placed in the template
		// rendering queue" — an accurate database-time figure because
		// rendering happens elsewhere.
		rt := &renderTask{c: t.c, req: t.req, key: t.key, result: res}
		putErr := s.render.Submit(rt)
		s.dispatcher.Classifier().Record(t.key, s.cfg.Scale.Paper(s.cfg.Clock.Since(start)))
		if putErr != nil {
			t.c.Close()
		}
		return
	}

	// Backward compatibility (Section 3.1): a handler that returns an
	// already-rendered string is served directly by the dynamic worker —
	// the scheduling benefit is lost for such pages, as the paper notes,
	// and the render cost is charged here on the connection-holding
	// worker.
	s.dispatcher.Classifier().Record(t.key, s.cfg.Scale.Paper(s.cfg.Clock.Since(start)))
	s.recycle(t.c, s.tr.FinishDynamic(t.c, s.cfg.App, t.key, s.classOf(t.key), res, t.req.KeepAlive()))
}

// renderWork renders the deferred template on a worker with no database
// connection, charges the render cost there, and transmits.
func (s *Server) renderWork(t *renderTask) {
	s.recycle(t.c, s.tr.FinishDynamic(t.c, s.cfg.App, t.key, s.classOf(t.key), t.result, t.req.KeepAlive()))
}

// recycle parks a keep-alive connection until its next request's first
// byte arrives, then re-enqueues it to the header-parsing pool; non-keep-
// alive (or failed) connections close. The park goroutine plays the role
// of the OS readiness notification (select/poll in CherryPy's listener):
// header workers must never camp on idle sockets, or a handful of
// keep-alive clients would pin the whole pool.
func (s *Server) recycle(c *server.Conn, keep bool) {
	if !keep {
		c.Close()
		return
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		c.Close()
		return
	}
	s.parked[c] = struct{}{}
	s.parkWG.Add(1)
	s.mu.Unlock()
	go s.awaitNextRequest(c)
}

// awaitNextRequest blocks until the connection has readable data (the
// next pipelined request), then hands it back to the header stage. EOF,
// timeout, an Abort from Stop, or a full/closed queue close the
// connection; full-queue drops are counted as shed on the header stage.
func (s *Server) awaitNextRequest(c *server.Conn) {
	defer s.parkWG.Done()
	err := c.AwaitReadable()
	s.mu.Lock()
	delete(s.parked, c)
	stopped := s.stopped
	s.mu.Unlock()
	if err != nil || stopped {
		c.Close()
		return
	}
	if s.header.Offer(c) != nil {
		c.Close()
	}
}

func (s *Server) classOf(key string) server.Class {
	if s.dispatcher.Classifier().Lengthy(key) {
		return server.ClassLengthy
	}
	return server.ClassQuick
}

// ---- introspection for the harness and experiments ----

// Graph exposes the stage graph for uniform stats snapshots.
func (s *Server) Graph() *stage.Graph { return s.graph }

// Tier exposes the database tier for the db.* probes.
func (s *Server) Tier() *dbtier.Tier { return s.tier }

// QueueLens reports the current length of every stage queue, keyed by
// stage name. The general and lengthy entries are Figures 8(a) and 8(b).
func (s *Server) QueueLens() map[string]int { return s.graph.Depths() }

// GeneralQueueLen reports the general dynamic queue length (Figure 8a).
func (s *Server) GeneralQueueLen() int { return s.general.Depth() }

// LengthyQueueLen reports the lengthy dynamic queue length (Figure 8b).
func (s *Server) LengthyQueueLen() int { return s.lengthy.Depth() }

// Spare reports the general pool's current spare workers (t_spare).
func (s *Server) Spare() int { return s.general.Spare() }

// Reserve reports the controller's current t_reserve.
func (s *Server) Reserve() int { return s.dispatcher.ReserveController().Reserve() }

// Classifier exposes the page classifier (for diagnostics and tests).
func (s *Server) Classifier() *sched.Classifier { return s.dispatcher.Classifier() }

// DispatchCounts reports Table 1 decisions by target pool, fed by the
// dispatcher hook.
func (s *Server) DispatchCounts() (general, lengthy int64) {
	return s.dispatchedGeneral.Value(), s.dispatchedLengthy.Value()
}

// Served reports the number of completed requests.
func (s *Server) Served() int64 { return s.tr.Served() }

// Shed reports keep-alive connections dropped due to a full header queue.
func (s *Server) Shed() int64 { return s.header.ShedCount() }

// String describes the server's pool configuration.
func (s *Server) String() string {
	return fmt.Sprintf("staged{header:%d static:%d general:%d lengthy:%d render:%d}",
		s.cfg.HeaderWorkers, s.cfg.StaticWorkers, s.cfg.GeneralWorkers,
		s.cfg.LengthyWorkers, s.cfg.RenderWorkers)
}
