// Package core implements the paper's primary contribution: the modified
// multithreaded web server whose requests are served by different threads
// in multiple thread pools.
//
// The topology is exactly Figure 5 of the paper — a single listener and
// five pools:
//
//	listener -> header parsing -> static requests
//	                           -> general dynamic requests  -> template
//	                           -> lengthy dynamic requests  ->  rendering
//
// Database connections are bound only to the dynamic-request workers, so
// they are never idle while templates render or static files are served.
// Dynamic requests are classified quick/lengthy by tracked mean
// data-generation time (sched.Classifier, 2 s cutoff), dispatched per
// Table 1, and protected from head-of-line blocking by the t_reserve
// feedback controller (sched.ReserveController, updated once per paper
// second).
package core

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/httpwire"
	"stagedweb/internal/metrics"
	"stagedweb/internal/pool"
	"stagedweb/internal/sched"
	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
)

// Config configures the staged server.
type Config struct {
	// App is the application to serve.
	App server.App
	// DB is the database; each dynamic worker owns one connection, so the
	// connection budget is GeneralWorkers + LengthyWorkers.
	DB *sqldb.DB

	// Pool sizes. The paper sizes the general pool at four times the
	// lengthy pool. Zero values take the defaults below.
	HeaderWorkers  int // default 8
	StaticWorkers  int // default 16
	GeneralWorkers int // default 64
	LengthyWorkers int // default 16
	RenderWorkers  int // default 16

	// QueueCap bounds every stage queue. Defaults to 4096.
	QueueCap int

	// Cutoff is the quick/lengthy boundary in paper time (default 2 s,
	// the paper's value).
	Cutoff time.Duration
	// MinReserve is the configured minimum t_reserve (default 20, the
	// value used in the paper's Table 2).
	MinReserve int
	// ControllerInterval is the t_reserve update period in paper time
	// (default 1 s, per the paper).
	ControllerInterval time.Duration

	// Clock and Scale drive the controller loop and convert measured
	// wall durations into paper time for classification.
	Clock clock.Clock
	Scale clock.Timescale

	// IdleTimeout bounds how long a header-parsing worker waits for the
	// next request line on a connection (wall time), like CherryPy's
	// socket timeout. Defaults to 10 s.
	IdleTimeout time.Duration

	// Cost models render/static worker time (paper time); zero charges
	// nothing. In this server the costs land on the rendering and static
	// pools, which hold no database connections — the paper's point.
	Cost server.WorkCost

	// OnComplete, when set, receives a CompletionEvent per request.
	OnComplete func(server.CompletionEvent)
}

func (c *Config) fillDefaults() {
	if c.HeaderWorkers <= 0 {
		c.HeaderWorkers = 8
	}
	if c.StaticWorkers <= 0 {
		c.StaticWorkers = 16
	}
	if c.GeneralWorkers <= 0 {
		c.GeneralWorkers = 64
	}
	if c.LengthyWorkers <= 0 {
		c.LengthyWorkers = 16
	}
	if c.RenderWorkers <= 0 {
		c.RenderWorkers = 16
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
	if c.Cutoff <= 0 {
		c.Cutoff = sched.DefaultCutoff
	}
	if c.MinReserve <= 0 {
		c.MinReserve = 20
	}
	if c.ControllerInterval <= 0 {
		c.ControllerInterval = time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Second
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.Scale == 0 {
		c.Scale = clock.RealTime
	}
}

// connCtx is a client connection moving through the pipeline.
type connCtx struct {
	conn     net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	acquired time.Time // when the current request started processing
}

// staticTask is a request classified static by a header-parsing worker.
type staticTask struct {
	cc   *connCtx
	line httpwire.RequestLine
}

// dynTask is a fully header-parsed dynamic request.
type dynTask struct {
	cc  *connCtx
	req *httpwire.Request
	key string
}

// renderTask is an unrendered template plus its data, queued for the
// rendering pool.
type renderTask struct {
	cc     *connCtx
	req    *httpwire.Request
	key    string
	result *server.Result
}

// Server is the staged (modified) web server.
type Server struct {
	cfg Config

	headerQ  *pool.Queue[*connCtx]
	staticQ  *pool.Queue[*staticTask]
	generalQ *pool.Queue[*dynTask]
	lengthyQ *pool.Queue[*dynTask]
	renderQ  *pool.Queue[*renderTask]

	headerP  *pool.Pool[*connCtx]
	staticP  *pool.Pool[*staticTask]
	generalP *pool.Pool[*dynTask]
	lengthyP *pool.Pool[*dynTask]
	renderP  *pool.Pool[*renderTask]

	dispatcher *sched.Dispatcher
	controller *sched.Controller

	mu       sync.Mutex
	listener net.Listener
	stopped  bool
	conns    []*sqldb.Conn

	accepted metrics.Counter
	served   metrics.Counter
	shed     metrics.Counter // keep-alive re-enqueues dropped on full queue
}

// New validates the configuration and builds the staged server.
func New(cfg Config) (*Server, error) {
	if cfg.App == nil {
		return nil, errors.New("core: nil App")
	}
	if cfg.DB == nil {
		return nil, errors.New("core: nil DB")
	}
	cfg.fillDefaults()
	s := &Server{cfg: cfg}

	s.headerQ = pool.NewQueue[*connCtx](cfg.QueueCap)
	s.staticQ = pool.NewQueue[*staticTask](cfg.QueueCap)
	s.generalQ = pool.NewQueue[*dynTask](cfg.QueueCap)
	s.lengthyQ = pool.NewQueue[*dynTask](cfg.QueueCap)
	s.renderQ = pool.NewQueue[*renderTask](cfg.QueueCap)

	cls := sched.NewClassifier(cfg.Cutoff)
	rc := sched.NewReserveController(cfg.MinReserve)
	// Keep the controller in its stable region: reserving more than 3/4
	// of the general pool would let the grow rule run away (see
	// sched.NewReserveController).
	if maxR := cfg.GeneralWorkers * 3 / 4; maxR > cfg.MinReserve {
		rc.SetMax(maxR)
	}

	s.headerP = pool.New("header-parsing", cfg.HeaderWorkers, s.headerQ, s.headerWork)
	s.staticP = pool.New("static", cfg.StaticWorkers, s.staticQ, s.staticWork)

	// Database connections are created for dynamic workers only.
	generalConns := pool.NewQueue[*sqldb.Conn](cfg.GeneralWorkers)
	lengthyConns := pool.NewQueue[*sqldb.Conn](cfg.LengthyWorkers)
	for i := 0; i < cfg.GeneralWorkers; i++ {
		c := cfg.DB.Connect()
		s.conns = append(s.conns, c)
		_ = generalConns.Put(c)
	}
	for i := 0; i < cfg.LengthyWorkers; i++ {
		c := cfg.DB.Connect()
		s.conns = append(s.conns, c)
		_ = lengthyConns.Put(c)
	}
	s.generalP = pool.New("general-dynamic", cfg.GeneralWorkers, s.generalQ, func(t *dynTask) {
		dbc, _ := generalConns.Get()
		s.dynamicWork(t, dbc)
		_, _ = generalConns.TryPut(dbc)
	})
	s.lengthyP = pool.New("lengthy-dynamic", cfg.LengthyWorkers, s.lengthyQ, func(t *dynTask) {
		dbc, _ := lengthyConns.Get()
		s.dynamicWork(t, dbc)
		_, _ = lengthyConns.TryPut(dbc)
	})
	s.renderP = pool.New("template-rendering", cfg.RenderWorkers, s.renderQ, s.renderWork)

	// t_spare is the general pool's live spare-worker count.
	s.dispatcher = sched.NewDispatcher(cls, rc, s.generalP.Spare)
	return s, nil
}

// Serve accepts connections on l until Stop. It blocks; run it in a
// goroutine. The error is nil after a clean Stop.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		_ = l.Close()
		return nil
	}
	s.listener = l
	s.headerP.Start()
	s.staticP.Start()
	s.generalP.Start()
	s.lengthyP.Start()
	s.renderP.Start()
	s.controller = sched.StartController(
		s.cfg.Clock,
		s.cfg.Scale.Wall(s.cfg.ControllerInterval),
		s.dispatcher.ReserveController(),
		s.generalP.Spare,
	)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.accepted.Inc()
		cc := &connCtx{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
		if err := s.headerQ.Put(cc); err != nil {
			_ = conn.Close()
			return nil // shutting down
		}
	}
}

// Stop shuts the pipeline down in flow order, draining each stage. It is
// safe to call before, during, or after Serve.
func (s *Server) Stop() {
	s.mu.Lock()
	s.stopped = true
	l := s.listener
	ctl := s.controller
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	if ctl != nil {
		ctl.Stop()
	}
	s.headerP.Stop()
	s.staticP.Stop()
	s.generalP.Stop()
	s.lengthyP.Stop()
	s.renderP.Stop()
	for _, c := range s.conns {
		c.Close()
	}
}

// ---- pipeline stages ----

// headerWork is the header-parsing pool: phase-one parse, static/dynamic
// classification, and (for dynamics) the full header+query parse plus the
// Table 1 dispatch decision.
func (s *Server) headerWork(cc *connCtx) {
	cc.acquired = time.Now()
	// Bound the wait for the request line so an idle keep-alive client
	// cannot pin a header-parsing worker.
	_ = cc.conn.SetReadDeadline(cc.acquired.Add(s.cfg.IdleTimeout))
	line, err := httpwire.ReadRequestLine(cc.br)
	if err != nil {
		// EOF between keep-alive requests is normal connection teardown.
		_ = cc.conn.Close()
		return
	}
	_ = cc.conn.SetReadDeadline(time.Time{})
	if line.IsStatic() {
		// Static requests carry their unparsed header tail to the static
		// pool; "this is not an issue for static requests, so we let the
		// threads which actually serve those static requests parse their
		// headers" (Section 3.2).
		if err := s.staticQ.Put(&staticTask{cc: cc, line: line}); err != nil {
			_ = cc.conn.Close()
		}
		return
	}
	// Dynamic: parse everything here so a thread with an open database
	// connection never spends time on anything but generating data.
	req, err := httpwire.FinishRequest(cc.br, line)
	if err != nil {
		_ = httpwire.WriteError(cc.bw, httpwire.StatusBadRequest, "bad request")
		_ = cc.conn.Close()
		return
	}
	task := &dynTask{cc: cc, req: req, key: line.Path}
	var putErr error
	switch s.dispatcher.Choose(task.key) {
	case sched.Lengthy:
		putErr = s.lengthyQ.Put(task)
	default:
		putErr = s.generalQ.Put(task)
	}
	if putErr != nil {
		_ = cc.conn.Close()
	}
}

// staticWork parses the header tail and serves the file.
func (s *Server) staticWork(t *staticTask) {
	cc := t.cc
	hdr, err := httpwire.ReadHeaders(cc.br)
	if err != nil {
		_ = cc.conn.Close()
		return
	}
	req := &httpwire.Request{Line: t.line, Header: hdr}
	keep := req.KeepAlive()
	body, ct, ok := s.cfg.App.Static(t.line.Path)
	status := httpwire.StatusOK
	if !ok {
		status = httpwire.StatusNotFound
		body, ct = []byte("not found"), "text/plain; charset=utf-8"
		keep = false
	} else {
		s.charge(s.cfg.Cost.Static(len(body)))
	}
	resp := &httpwire.Response{Status: status, ContentType: ct, Body: body, KeepAlive: keep}
	if err := resp.Write(cc.bw); err != nil {
		_ = cc.conn.Close()
		return
	}
	s.complete(server.CompletionEvent{
		Page:       t.line.Path,
		Class:      server.ClassStatic,
		Status:     status,
		Done:       time.Now(),
		ServerTime: time.Since(cc.acquired),
	})
	s.recycle(cc, keep)
}

// dynamicWork runs the page handler on a worker that owns a database
// connection, measures data-generation time, and hands deferred results
// to the rendering pool.
func (s *Server) dynamicWork(t *dynTask, dbc *sqldb.Conn) {
	cc := t.cc
	keep := t.req.KeepAlive()
	handler, ok := s.cfg.App.Handler(t.req.Line.Path)
	if !ok {
		s.directReply(t, httpwire.StatusNotFound, []byte("not found"), "text/plain; charset=utf-8", false)
		return
	}
	start := time.Now()
	res, err := handler(&server.Request{
		Path:   t.req.Line.Path,
		Query:  t.req.Query,
		Header: t.req.Header,
		DB:     dbc,
	})
	if err != nil {
		s.directReply(t, httpwire.StatusInternalServerError, []byte("internal error"), "text/plain; charset=utf-8", false)
		return
	}

	if res.Deferred() {
		// The paper's measurement: "from when the request is acquired
		// through when its unrendered template is placed in the template
		// rendering queue" — an accurate database-time figure because
		// rendering happens elsewhere.
		rt := &renderTask{cc: cc, req: t.req, key: t.key, result: res}
		putErr := s.renderQ.Put(rt)
		s.dispatcher.Classifier().Record(t.key, s.cfg.Scale.Paper(time.Since(start)))
		if putErr != nil {
			_ = cc.conn.Close()
		}
		return
	}

	// Backward compatibility (Section 3.1): a handler that returns an
	// already-rendered string is served directly by the dynamic worker —
	// the scheduling benefit is lost for such pages, as the paper notes.
	s.dispatcher.Classifier().Record(t.key, s.cfg.Scale.Paper(time.Since(start)))
	body, ct, status, rerr := server.RenderResult(s.cfg.App, res)
	if rerr != nil {
		s.directReply(t, httpwire.StatusInternalServerError, []byte("render error"), "text/plain; charset=utf-8", false)
		return
	}
	if res.Body != "" {
		// A pre-rendered page did its rendering inside the handler, on
		// this connection-holding worker; charge it here.
		s.charge(s.cfg.Cost.Render(len(body)))
	}
	resp := server.BuildResponse(res, body, ct, status, keep)
	if err := resp.Write(cc.bw); err != nil {
		_ = cc.conn.Close()
		return
	}
	s.complete(server.CompletionEvent{
		Page:       t.key,
		Class:      s.classOf(t.key),
		Status:     status,
		Done:       time.Now(),
		ServerTime: time.Since(cc.acquired),
	})
	s.recycle(cc, keep)
}

// renderWork renders the deferred template, measures the output size (the
// response writer sets the exact Content-Length), and transmits.
func (s *Server) renderWork(t *renderTask) {
	cc := t.cc
	keep := t.req.KeepAlive()
	body, ct, status, err := server.RenderResult(s.cfg.App, t.result)
	if err != nil {
		_ = httpwire.WriteError(cc.bw, httpwire.StatusInternalServerError, "render error")
		_ = cc.conn.Close()
		return
	}
	s.charge(s.cfg.Cost.Render(len(body)))
	resp := server.BuildResponse(t.result, body, ct, status, keep)
	if err := resp.Write(cc.bw); err != nil {
		_ = cc.conn.Close()
		return
	}
	s.complete(server.CompletionEvent{
		Page:       t.key,
		Class:      s.classOf(t.key),
		Status:     status,
		Done:       time.Now(),
		ServerTime: time.Since(cc.acquired),
	})
	s.recycle(cc, keep)
}

// directReply sends a terminal plain response from a dynamic worker.
func (s *Server) directReply(t *dynTask, status int, body []byte, ct string, keep bool) {
	cc := t.cc
	resp := &httpwire.Response{Status: status, ContentType: ct, Body: body, KeepAlive: keep}
	if err := resp.Write(cc.bw); err != nil {
		_ = cc.conn.Close()
		return
	}
	s.complete(server.CompletionEvent{
		Page:       t.key,
		Class:      s.classOf(t.key),
		Status:     status,
		Done:       time.Now(),
		ServerTime: time.Since(cc.acquired),
	})
	s.recycle(cc, keep)
}

// recycle parks a keep-alive connection until its next request's first
// byte arrives, then re-enqueues it to the header-parsing pool; non-keep-
// alive connections close. The park goroutine plays the role of the OS
// readiness notification (select/poll in CherryPy's listener): header
// workers must never camp on idle sockets, or a handful of keep-alive
// clients would pin the whole pool.
func (s *Server) recycle(cc *connCtx, keep bool) {
	if !keep {
		_ = cc.conn.Close()
		return
	}
	go s.awaitNextRequest(cc)
}

// awaitNextRequest blocks until the connection has readable data (the
// next pipelined request), then hands it back to the header queue. EOF,
// timeout, or a full/closed queue close the connection.
func (s *Server) awaitNextRequest(cc *connCtx) {
	_ = cc.conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	if _, err := cc.br.Peek(1); err != nil {
		_ = cc.conn.Close()
		return
	}
	_ = cc.conn.SetReadDeadline(time.Time{})
	ok, err := s.headerQ.TryPut(cc)
	if err != nil || !ok {
		s.shed.Inc()
		_ = cc.conn.Close()
	}
}

// charge sleeps a paper-time work cost through the timescale.
func (s *Server) charge(paperCost time.Duration) {
	if paperCost > 0 {
		s.cfg.Clock.Sleep(s.cfg.Scale.Wall(paperCost))
	}
}

func (s *Server) classOf(key string) server.Class {
	if s.dispatcher.Classifier().Lengthy(key) {
		return server.ClassLengthy
	}
	return server.ClassQuick
}

func (s *Server) complete(ev server.CompletionEvent) {
	s.served.Inc()
	if s.cfg.OnComplete != nil {
		s.cfg.OnComplete(ev)
	}
}

// ---- introspection for the harness and experiments ----

// QueueLens reports the current length of every stage queue, keyed by
// stage name. The general and lengthy entries are Figures 8(a) and 8(b).
func (s *Server) QueueLens() map[string]int {
	return map[string]int{
		"header":  s.headerQ.Len(),
		"static":  s.staticQ.Len(),
		"general": s.generalQ.Len(),
		"lengthy": s.lengthyQ.Len(),
		"render":  s.renderQ.Len(),
	}
}

// GeneralQueueLen reports the general dynamic queue length (Figure 8a).
func (s *Server) GeneralQueueLen() int { return s.generalQ.Len() }

// LengthyQueueLen reports the lengthy dynamic queue length (Figure 8b).
func (s *Server) LengthyQueueLen() int { return s.lengthyQ.Len() }

// Spare reports the general pool's current spare workers (t_spare).
func (s *Server) Spare() int { return s.generalP.Spare() }

// Reserve reports the controller's current t_reserve.
func (s *Server) Reserve() int { return s.dispatcher.ReserveController().Reserve() }

// Classifier exposes the page classifier (for diagnostics and tests).
func (s *Server) Classifier() *sched.Classifier { return s.dispatcher.Classifier() }

// Served reports the number of completed requests.
func (s *Server) Served() int64 { return s.served.Value() }

// Shed reports keep-alive connections dropped due to a full header queue.
func (s *Server) Shed() int64 { return s.shed.Value() }

// String describes the server's pool configuration.
func (s *Server) String() string {
	return fmt.Sprintf("staged{header:%d static:%d general:%d lengthy:%d render:%d}",
		s.cfg.HeaderWorkers, s.cfg.StaticWorkers, s.cfg.GeneralWorkers,
		s.cfg.LengthyWorkers, s.cfg.RenderWorkers)
}
