package core_test

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/core"
	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/webtest"
)

// TestClassifierSeesInjectedClockDurations is the regression test for
// the wall-clock timing bug: data-generation time must be measured on
// the injected Clock, not time.Now(). Under a manual clock a 3-paper-
// second query advances only the manual clock, so before the fix the
// classifier recorded ~0 and no page could ever classify lengthy.
func TestClassifierSeesInjectedClockDurations(t *testing.T) {
	manual := clock.NewManual(time.Unix(1_700_000_000, 0))
	db := sqldb.Open(sqldb.Options{
		Clock: manual,
		// Every statement costs 3 paper-seconds — over the 2 s cutoff.
		Cost: &sqldb.CostModel{PerStatement: 3 * time.Second},
	})
	db.MustCreateTable(sqldb.Schema{
		Table:      "kv",
		Columns:    []sqldb.Column{{Name: "id", Type: sqldb.Int}, {Name: "v", Type: sqldb.String}},
		PrimaryKey: "id",
	})

	app := webtest.NewApp()
	app.AddTemplate("page.html", "<html>{{ n }}</html>")
	app.AddPage("/slow", func(r *server.Request) (*server.Result, error) {
		rs, err := r.DB.Query("SELECT v FROM kv")
		if err != nil {
			return nil, err
		}
		return &server.Result{Template: "page.html", Data: map[string]any{"n": rs.Len()}}, nil
	})

	srv, err := core.New(core.Config{
		App:            app,
		DB:             db,
		Clock:          manual,
		Scale:          clock.RealTime,
		NoReserve:      true, // no controller ticker: the only manual waiter is the query's cost sleep
		HeaderWorkers:  1,
		StaticWorkers:  1,
		GeneralWorkers: 2,
		LengthyWorkers: 1,
		RenderWorkers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, addr, err := webtest.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Stop()

	got := make(chan error, 1)
	go func() {
		_, err := webtest.Get(addr, "/slow")
		got <- err
	}()
	// The handler is now asleep in the database's 3 s cost charge;
	// advance paper time past it.
	manual.BlockUntilWaiters(1)
	manual.Advance(3 * time.Second)
	if err := <-got; err != nil {
		t.Fatal(err)
	}

	if !srv.Classifier().Lengthy("/slow") {
		t.Fatalf("classifier mean for /slow = quick; 3 s of injected-clock data generation was not recorded")
	}
}

// TestStopClosesParkedKeepAlives asserts shutdown promptness: a parked
// keep-alive connection must be closed by Stop, not left to age out the
// 10 s wall idle timeout.
func TestStopClosesParkedKeepAlives(t *testing.T) {
	env := startStaged(t, stagedApp(), nil)

	nc, err := net.Dial("tcp", env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := fmt.Fprintf(nc, "GET /hello HTTP/1.1\r\nHost: test\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	// Read the full response (headers + Content-Length body) so the
	// server parks the connection for the next pipelined request.
	br := bufio.NewReader(nc)
	contentLen := 0
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if n, ok := strings.CutPrefix(strings.TrimSpace(line), "Content-Length: "); ok {
			fmt.Sscanf(n, "%d", &contentLen)
		}
		if line == "\r\n" {
			break
		}
	}
	if _, err := io.ReadFull(br, make([]byte, contentLen)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let recycle park the connection

	start := time.Now()
	env.srv.Stop()
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Stop took %v; parked connections should not delay shutdown", elapsed)
	}
	// The server side must close the parked connection promptly — well
	// inside the 10 s idle timeout the old code waited out.
	_ = nc.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := br.ReadByte(); err == nil || os.IsTimeout(err) {
		t.Fatalf("parked connection still open after Stop (read err = %v)", err)
	}
	if n := env.db.OpenConns(); n != 0 {
		t.Fatalf("%d database connections still open after Stop", n)
	}
}
