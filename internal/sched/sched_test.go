package sched

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"stagedweb/internal/clock"
)

// TestReserveControllerPaperTrace reproduces Table 2 of the paper exactly:
// the 10-second t_spare trace with min t_reserve = 20.
func TestReserveControllerPaperTrace(t *testing.T) {
	rc := NewReserveController(20)
	trace := []struct {
		tspare      int
		wantReserve int // t_reserve listed for this second (before update)
		wantDelta   int // the table's delta column
	}{
		{35, 20, 0},
		{24, 20, 0},
		{17, 20, 6},
		{21, 26, 5},
		{30, 31, 1},
		{36, 32, -2},
		{38, 30, -4},
		{37, 26, -5},
		{35, 21, -1},
		{39, 20, 0},
	}
	for i, step := range trace {
		if got := rc.Reserve(); got != step.wantReserve {
			t.Fatalf("second %d: t_reserve = %d, want %d", i+1, got, step.wantReserve)
		}
		before := rc.Reserve()
		after := rc.Update(step.tspare)
		if delta := after - before; delta != step.wantDelta {
			t.Fatalf("second %d: delta = %+d, want %+d (t_spare=%d, before=%d)",
				i+1, delta, step.wantDelta, step.tspare, before)
		}
	}
	if got := rc.Reserve(); got != 20 {
		t.Fatalf("final t_reserve = %d, want 20", got)
	}
}

func TestReserveNeverBelowMin(t *testing.T) {
	rc := NewReserveController(20)
	for i := 0; i < 50; i++ {
		rc.Update(1000) // huge spare counts decay the reserve
		if rc.Reserve() < 20 {
			t.Fatalf("reserve %d fell below min", rc.Reserve())
		}
	}
	if rc.Reserve() != 20 {
		t.Fatalf("reserve = %d, want steady-state 20", rc.Reserve())
	}
}

func TestReserveSpikesGrow(t *testing.T) {
	rc := NewReserveController(20)
	// A spike: spare collapses to 0. Growth = (20-0) + (20-0) = +40.
	if got := rc.Update(0); got != 60 {
		t.Fatalf("reserve after total collapse = %d, want 60", got)
	}
}

// Property: the reserve is always >= min, and updates are monotone in the
// right direction (spare below reserve grows it, spare above shrinks it).
func TestReserveControllerProperty(t *testing.T) {
	f := func(spares []uint8) bool {
		rc := NewReserveController(10)
		for _, s := range spares {
			before := rc.Reserve()
			after := rc.Update(int(s))
			if after < 10 {
				return false
			}
			if int(s) < before && after <= before {
				return false // drop must grow the reserve
			}
			if int(s) > before && after > before {
				return false // surplus must not grow it
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifierCutoff(t *testing.T) {
	c := NewClassifier(DefaultCutoff)
	if c.Lengthy("unknown") {
		t.Fatal("unseen page must be quick")
	}
	c.Record("home", 30*time.Millisecond)
	if c.Lengthy("home") {
		t.Fatal("30ms page classified lengthy")
	}
	c.Record("best_sellers", 8*time.Second)
	if !c.Lengthy("best_sellers") {
		t.Fatal("8s page classified quick")
	}
}

func TestClassifierMeanTracksHistory(t *testing.T) {
	c := NewClassifier(DefaultCutoff)
	c.Record("p", 1*time.Second)
	c.Record("p", 3*time.Second)
	if got := c.Mean("p"); got != 2*time.Second {
		t.Fatalf("Mean = %v, want 2s", got)
	}
	// A page drifting over the cutoff flips classification.
	c.Record("p", 10*time.Second)
	if !c.Lengthy("p") {
		t.Fatalf("mean %v should be lengthy", c.Mean("p"))
	}
}

func TestClassifierNegativeClamped(t *testing.T) {
	c := NewClassifier(DefaultCutoff)
	c.Record("p", -time.Second)
	if got := c.Mean("p"); got != 0 {
		t.Fatalf("Mean = %v, want 0", got)
	}
}

func TestClassifierSnapshotSorted(t *testing.T) {
	c := NewClassifier(DefaultCutoff)
	c.Record("zeta", time.Second)
	c.Record("alpha", time.Second)
	c.Record("alpha", 3*time.Second)
	snap := c.Snapshot()
	if len(snap) != 2 || snap[0].Key != "alpha" || snap[1].Key != "zeta" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Count != 2 || snap[0].Mean != 2*time.Second {
		t.Fatalf("alpha stats = %+v", snap[0])
	}
}

func TestClassifierConcurrent(t *testing.T) {
	c := NewClassifier(DefaultCutoff)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Record("page", time.Millisecond)
				_ = c.Lengthy("page")
			}
		}()
	}
	wg.Wait()
	snap := c.Snapshot()
	if snap[0].Count != 4000 {
		t.Fatalf("count = %d, want 4000", snap[0].Count)
	}
}

// TestDispatchRules verifies Table 1 of the paper.
func TestDispatchRules(t *testing.T) {
	cls := NewClassifier(DefaultCutoff)
	cls.Record("quick_page", 10*time.Millisecond)
	cls.Record("lengthy_page", 10*time.Second)
	rc := NewReserveController(20)

	spare := 0
	d := NewDispatcher(cls, rc, func() int { return spare })

	tests := []struct {
		name   string
		key    string
		tspare int
		want   Target
	}{
		{"quick always general (low spare)", "quick_page", 0, General},
		{"quick always general (high spare)", "quick_page", 100, General},
		{"unknown page treated quick", "never_seen", 0, General},
		{"lengthy with tspare > treserve", "lengthy_page", 21, General},
		{"lengthy with tspare == treserve", "lengthy_page", 20, Lengthy},
		{"lengthy with tspare < treserve", "lengthy_page", 3, Lengthy},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spare = tt.tspare
			if got := d.Choose(tt.key); got != tt.want {
				t.Fatalf("Choose(%s) with tspare=%d treserve=%d = %v, want %v",
					tt.key, tt.tspare, rc.Reserve(), got, tt.want)
			}
		})
	}
}

func TestDispatcherAccessors(t *testing.T) {
	cls := NewClassifier(DefaultCutoff)
	rc := NewReserveController(5)
	d := NewDispatcher(cls, rc, func() int { return 0 })
	if d.Classifier() != cls || d.ReserveController() != rc {
		t.Fatal("accessors mismatched")
	}
}

func TestControllerLoopUpdatesOncePerTick(t *testing.T) {
	clk := clock.NewManual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	rc := NewReserveController(20)
	ctl := StartController(clk, time.Second, rc, func() int { return 0 }) // collapse: +40 per tick
	defer ctl.Stop()

	clk.BlockUntilWaiters(1)
	// Tick 1: reserve 20, spare 0 -> +(20-0) + (20-0) = 60.
	clk.Advance(time.Second)
	waitForReserve(t, rc, 60)
	// Tick 2: reserve 60, spare 0 -> +(60-0) + (20-0) = 140.
	clk.Advance(time.Second)
	waitForReserve(t, rc, 140)
}

// waitForReserve polls until the controller has applied the tick.
func waitForReserve(t *testing.T, rc *ReserveController, atLeast int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for rc.Reserve() < atLeast {
		if time.Now().After(deadline) {
			t.Fatalf("reserve %d never reached %d", rc.Reserve(), atLeast)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestInvalidConstruction(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero cutoff":    func() { NewClassifier(0) },
		"negative min":   func() { NewReserveController(-1) },
		"nil spare":      func() { NewDispatcher(NewClassifier(time.Second), NewReserveController(0), nil) },
		"nil classifier": func() { NewDispatcher(nil, NewReserveController(0), func() int { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
