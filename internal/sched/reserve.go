package sched

import (
	"sync"
	"time"

	"stagedweb/internal/clock"
)

// ReserveController maintains t_reserve per Section 3.3 of the paper:
//
//   - When t_spare drops under t_reserve, t_reserve grows by the
//     difference, plus the amount t_spare has dropped beneath the
//     configured minimum (if applicable) — an aggressive response to a
//     suspected traffic spike.
//
//   - When t_spare rises above t_reserve, t_reserve shrinks by half the
//     difference, never below the minimum — a slow decay, to avoid
//     prematurely assuming the spike ended.
//
// Update is called once per (paper) second by the controller loop.
type ReserveController struct {
	mu      sync.Mutex
	min     int
	max     int // 0 = unlimited (the paper's literal rule)
	reserve int
}

// NewReserveController starts with reserve = min and no upper bound —
// the paper's literal rule.
//
// Note on stability: the paper's grow rule adds (t_reserve - t_spare)
// whenever t_spare is below t_reserve. If t_reserve ever exceeds the
// largest t_spare the pool can produce (its size), the rule grows
// t_reserve without bound and the overflow path ("lengthy requests may
// use the general pool") locks out permanently. The paper's 64-worker
// general pool never entered that region; smaller pools can. SetMax
// bounds t_reserve to keep the controller in its stable region; the
// staged server caps it at 3/4 of the general pool.
func NewReserveController(minReserve int) *ReserveController {
	if minReserve < 0 {
		panic("sched: negative minimum reserve")
	}
	return &ReserveController{min: minReserve, reserve: minReserve}
}

// SetMax bounds t_reserve above (0 removes the bound). If the current
// reserve exceeds the new bound it is clamped immediately.
func (r *ReserveController) SetMax(maxReserve int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.max = maxReserve
	if r.max > 0 && r.reserve > r.max {
		r.reserve = r.max
	}
}

// Reserve reports the current t_reserve.
func (r *ReserveController) Reserve() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reserve
}

// Min reports the configured minimum reserve.
func (r *ReserveController) Min() int { return r.min }

// Update folds one t_spare measurement into t_reserve and returns the new
// value. This is the exact rule reproduced by Table 2 of the paper.
func (r *ReserveController) Update(tspare int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tspare < r.reserve {
		delta := r.reserve - tspare
		if tspare < r.min {
			delta += r.min - tspare
		}
		r.reserve += delta
		if r.max > 0 && r.reserve > r.max {
			r.reserve = r.max
		}
	} else {
		r.reserve -= (tspare - r.reserve) / 2
		if r.reserve < r.min {
			r.reserve = r.min
		}
	}
	return r.reserve
}

// Controller runs the once-per-second update loop.
type Controller struct {
	stop chan struct{}
	done chan struct{}
}

// StartController updates rc from spare() every interval on clk (the
// paper uses one second of paper time) until Stop is called.
func StartController(clk clock.Clock, interval time.Duration, rc *ReserveController, spare func() int) *Controller {
	c := &Controller{stop: make(chan struct{}), done: make(chan struct{})}
	tk := clk.NewTicker(interval)
	go func() {
		defer close(c.done)
		defer tk.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-tk.C():
				rc.Update(spare())
			}
		}
	}()
	return c
}

// Stop halts the controller loop and waits for it to exit.
func (c *Controller) Stop() {
	close(c.stop)
	<-c.done
}
