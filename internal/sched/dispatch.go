package sched

// Target is the dynamic-request pool a request is dispatched to.
type Target int

const (
	// General is the general dynamic request pool: all quick requests,
	// plus lengthy requests while spare capacity is abundant.
	General Target = iota + 1
	// Lengthy is the lengthy dynamic request pool.
	Lengthy
)

func (t Target) String() string {
	switch t {
	case General:
		return "general"
	case Lengthy:
		return "lengthy"
	default:
		return "unknown"
	}
}

// Dispatcher applies Table 1 of the paper:
//
//	quick request                              -> general pool
//	lengthy request and t_spare >  t_reserve   -> general pool
//	lengthy request and t_spare <= t_reserve   -> lengthy pool
type Dispatcher struct {
	cls   *Classifier
	rc    *ReserveController
	spare func() int // live spare-thread count of the general pool
	hook  Hook
}

// Hook observes every dispatch decision — servers hang per-target
// counters and diagnostics off it.
type Hook func(key string, target Target)

// NewDispatcher wires the classifier, reserve controller, and the general
// pool's spare-count source.
func NewDispatcher(cls *Classifier, rc *ReserveController, spare func() int) *Dispatcher {
	if cls == nil || rc == nil || spare == nil {
		panic("sched: nil dispatcher dependency")
	}
	return &Dispatcher{cls: cls, rc: rc, spare: spare}
}

// SetHook registers fn to observe every decision. It must be called
// before dispatching begins; the field is read without synchronization.
func (d *Dispatcher) SetHook(fn Hook) { d.hook = fn }

// Choose picks the pool for a dynamic request identified by its page key.
func (d *Dispatcher) Choose(key string) Target {
	t := d.choose(key)
	if d.hook != nil {
		d.hook(key, t)
	}
	return t
}

func (d *Dispatcher) choose(key string) Target {
	if !d.cls.Lengthy(key) {
		return General
	}
	if d.spare() > d.rc.Reserve() {
		return General
	}
	return Lengthy
}

// Classifier exposes the dispatcher's classifier (for recording
// measurements and for diagnostics).
func (d *Dispatcher) Classifier() *Classifier { return d.cls }

// ReserveController exposes the dispatcher's controller.
func (d *Dispatcher) ReserveController() *ReserveController { return d.rc }
