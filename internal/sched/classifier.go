// Package sched implements the DSN'09 request scheduling policy — the
// paper's primary contribution:
//
//   - a Classifier that tracks the mean data-generation time of every
//     dynamic page (measured from request acquisition to the moment its
//     unrendered template is queued for rendering, so template time never
//     pollutes the measurement) and classifies pages as quick or lengthy
//     against a cutoff (2 s in the paper);
//
//   - a ReserveController that maintains t_reserve, the shifting minimum
//     number of general-pool workers reserved for quick requests,
//     adjusted once per second from the measured spare count t_spare
//     (Section 3.3, Table 2); and
//
//   - a Dispatcher applying the three dispatch rules of Table 1.
package sched

import (
	"sort"
	"sync"
	"time"
)

// DefaultCutoff is the paper's quick/lengthy boundary: two seconds of
// data-generation time (paper time).
const DefaultCutoff = 2 * time.Second

// Classifier tracks mean data-generation time per page key.
//
// The paper tracks "the average time spent in generating data for each
// page"; a cumulative mean is used here. Pages never seen are quick —
// optimistic, like the paper's server, which can only learn a page is
// lengthy by serving it.
type Classifier struct {
	mu     sync.Mutex
	cutoff time.Duration
	stats  map[string]*pageStat
}

type pageStat struct {
	count int64
	total time.Duration
}

// NewClassifier returns a classifier with the given cutoff; use
// DefaultCutoff for the paper's configuration.
func NewClassifier(cutoff time.Duration) *Classifier {
	if cutoff <= 0 {
		panic("sched: non-positive classifier cutoff")
	}
	return &Classifier{cutoff: cutoff, stats: make(map[string]*pageStat, 32)}
}

// Cutoff reports the quick/lengthy boundary.
func (c *Classifier) Cutoff() time.Duration { return c.cutoff }

// Record adds one data-generation time observation (paper time) for key.
func (c *Classifier) Record(key string, dataGen time.Duration) {
	if dataGen < 0 {
		dataGen = 0
	}
	c.mu.Lock()
	st, ok := c.stats[key]
	if !ok {
		st = &pageStat{}
		c.stats[key] = st
	}
	st.count++
	st.total += dataGen
	c.mu.Unlock()
}

// Lengthy reports whether key's mean data-generation time exceeds the
// cutoff. Unknown pages are quick.
func (c *Classifier) Lengthy(key string) bool {
	return c.Mean(key) > c.cutoff
}

// Mean reports the mean data-generation time for key (0 when unseen).
func (c *Classifier) Mean(key string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.stats[key]
	if !ok || st.count == 0 {
		return 0
	}
	return st.total / time.Duration(st.count)
}

// PageStat is an exported snapshot of one page's history.
type PageStat struct {
	Key   string
	Count int64
	Mean  time.Duration
}

// Snapshot returns per-page statistics sorted by key.
func (c *Classifier) Snapshot() []PageStat {
	c.mu.Lock()
	out := make([]PageStat, 0, len(c.stats))
	for key, st := range c.stats {
		ps := PageStat{Key: key, Count: st.count}
		if st.count > 0 {
			ps.Mean = st.total / time.Duration(st.count)
		}
		out = append(out, ps)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
